//! Post-dedup object compression for the flush path.
//!
//! De-duplicated records still carry first-occurrence chunk payloads that
//! compress well, and at scale the modeled SSD/PFS write time — not host
//! hashing — dominates end-to-end checkpoint latency. This module shrinks
//! bytes-on-wire *inside the flusher*, off the producer's critical path:
//! the submit fast path stages raw bytes in host memory exactly as before,
//! and the background drain compresses each object on the shared
//! work-stealing pool (a [`ckpt_compress::blocks`] container, so one
//! object fans out across workers) before it hops to the SSD or PFS.
//!
//! # Policy
//!
//! [`CompressionPolicy`] picks the codec per object:
//!
//! * `Off` — codec 0 everywhere; byte-identical to the pre-compression
//!   runtime.
//! * `Fixed(codec)` — every object through one codec, still with the
//!   store fallback when the container would not shrink it.
//! * `Adaptive` — sample the object's first [`SAMPLE_LEN`] bytes through
//!   each candidate (`ZstdLike`, `Lz4Like`, `Cascaded`), estimate the
//!   ratio, and pick the candidate maximizing estimated bytes saved per
//!   unit of encode cost (`(1 − ratio) / flops_per_byte`); if even the
//!   best sample ratio clears [`STORE_RATIO`], store uncompressed.
//!
//! Either way an object whose container fails to shrink below its raw size
//! (frame extension included) is stored with codec 0 — compression can
//! reorder the flush economics but never inflate a tier.

use crate::tier::StoredObject;
use ckpt_compress::blocks::{compress_blocks, DEFAULT_BLOCK_SIZE};
use ckpt_compress::codec_by_id;
use ckpt_dedup::frame::FRAME_EXT_LEN;
use ckpt_telemetry::{Counter, Gauge, Registry};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Sampled prefix per object for adaptive codec selection.
pub const SAMPLE_LEN: usize = 64 * 1024;

/// Sample compression ratio (compressed/raw) above which adaptive mode
/// stores the object uncompressed: the modeled write-time win would not
/// cover the decode cost on restore.
pub const STORE_RATIO: f64 = 0.95;

/// Objects smaller than this skip selection and compression outright: the
/// frame extension plus container overhead eats the win.
pub const MIN_COMPRESS_LEN: usize = 1024;

/// Candidate codec ids for adaptive selection, probed in this order:
/// ZstdLike (6), Lz4Like (1), Cascaded (3).
pub const ADAPTIVE_CANDIDATES: [u8; 3] = [6, 1, 3];

/// Per-object codec selection for the flush path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CompressionPolicy {
    /// No compression (the pre-compression runtime, byte for byte).
    #[default]
    Off,
    /// One codec for every object (by wire id, see
    /// [`ckpt_compress::codec_by_id`]).
    Fixed(u8),
    /// Sample-based per-object selection among [`ADAPTIVE_CANDIDATES`].
    Adaptive,
}

impl CompressionPolicy {
    /// Parse a CLI/bench spelling: `off`, `adaptive`, or a codec name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "off" | "none" => Some(CompressionPolicy::Off),
            "adaptive" => Some(CompressionPolicy::Adaptive),
            name => ckpt_compress::codec_id(name).map(CompressionPolicy::Fixed),
        }
    }

    pub fn label(&self) -> String {
        match self {
            CompressionPolicy::Off => "off".into(),
            CompressionPolicy::Adaptive => "adaptive".into(),
            CompressionPolicy::Fixed(id) => codec_by_id(*id)
                .map(|c| c.name().to_string())
                .unwrap_or_else(|| format!("codec{id}")),
        }
    }
}

/// `compress/*` telemetry. Every metric registers lazily on its first
/// event, so runs with compression off (or no compressed frames read)
/// export exactly the pre-existing schema.
///
/// | metric | kind | meaning |
/// |---|---|---|
/// | `compress/bytes_in` | counter | uncompressed bytes entering the encoder |
/// | `compress/bytes_out` | counter | stored bytes leaving it (incl. store fallbacks) |
/// | `compress/ratio_pct` | gauge | cumulative `100·bytes_out/bytes_in` |
/// | `compress/select_ns` | counter | adaptive sampling time |
/// | `compress/encode_ns` | counter | container encode time (pool-parallel) |
/// | `compress/decode_ns` | counter | container decode time on reads |
/// | `compress/objects/<codec>` | counter | objects stored per codec (`store` = fallback) |
pub struct CompressMetrics {
    registry: Option<Arc<Registry>>,
    bytes_in: OnceLock<Arc<Counter>>,
    bytes_out: OnceLock<Arc<Counter>>,
    ratio_pct: OnceLock<Arc<Gauge>>,
    select_ns: OnceLock<Arc<Counter>>,
    encode_ns: OnceLock<Arc<Counter>>,
    decode_ns: OnceLock<Arc<Counter>>,
}

impl CompressMetrics {
    pub fn bound(registry: Arc<Registry>) -> Self {
        CompressMetrics {
            registry: Some(registry),
            ..Self::detached()
        }
    }

    /// A sink that counts nothing (chains built without telemetry).
    pub fn detached() -> Self {
        CompressMetrics {
            registry: None,
            bytes_in: OnceLock::new(),
            bytes_out: OnceLock::new(),
            ratio_pct: OnceLock::new(),
            select_ns: OnceLock::new(),
            encode_ns: OnceLock::new(),
            decode_ns: OnceLock::new(),
        }
    }

    fn lazy<'a>(
        &'a self,
        slot: &'a OnceLock<Arc<Counter>>,
        name: &'static str,
    ) -> Option<&'a Arc<Counter>> {
        self.registry
            .as_ref()
            .map(|r| slot.get_or_init(|| r.counter(name)))
    }

    fn on_select(&self, ns: u64) {
        if let Some(c) = self.lazy(&self.select_ns, "compress/select_ns") {
            c.add(ns);
        }
    }

    fn on_encode(&self, codec_label: &str, bytes_in: u64, bytes_out: u64, ns: u64) {
        let Some(reg) = self.registry.as_ref() else {
            return;
        };
        let b_in = self
            .bytes_in
            .get_or_init(|| reg.counter("compress/bytes_in"));
        let b_out = self
            .bytes_out
            .get_or_init(|| reg.counter("compress/bytes_out"));
        b_in.add(bytes_in);
        b_out.add(bytes_out);
        if let Some(c) = self.lazy(&self.encode_ns, "compress/encode_ns") {
            c.add(ns);
        }
        reg.counter(&format!("compress/objects/{codec_label}"))
            .inc();
        let total_in = b_in.get().max(1);
        self.ratio_pct
            .get_or_init(|| reg.gauge("compress/ratio_pct"))
            .set((b_out.get() * 100 / total_in) as i64);
    }

    /// Record one container decode (called from the tier read path).
    pub fn on_decode(&self, ns: u64) {
        if let Some(c) = self.lazy(&self.decode_ns, "compress/decode_ns") {
            c.add(ns);
        }
    }
}

/// The flusher's encoder: applies a [`CompressionPolicy`] to raw staged
/// payloads, producing [`StoredObject`]s ready for the lower tiers.
pub struct CompressionEngine {
    policy: CompressionPolicy,
    metrics: Arc<CompressMetrics>,
}

impl CompressionEngine {
    pub fn new(policy: CompressionPolicy, metrics: Arc<CompressMetrics>) -> Self {
        CompressionEngine { policy, metrics }
    }

    pub fn policy(&self) -> CompressionPolicy {
        self.policy
    }

    pub fn enabled(&self) -> bool {
        self.policy != CompressionPolicy::Off
    }

    /// Encode one raw payload according to the policy. Infallible: any
    /// path that cannot shrink the payload falls back to codec 0.
    pub fn encode(&self, payload: Vec<u8>) -> StoredObject {
        let codec_id = match self.policy {
            CompressionPolicy::Off => return StoredObject::raw(payload),
            _ if payload.len() < MIN_COMPRESS_LEN => {
                self.metrics
                    .on_encode("store", payload.len() as u64, payload.len() as u64, 0);
                return StoredObject::raw(payload);
            }
            CompressionPolicy::Fixed(id) => Some(id).filter(|id| codec_by_id(*id).is_some()),
            CompressionPolicy::Adaptive => self.select(&payload),
        };
        let Some(codec_id) = codec_id else {
            self.metrics
                .on_encode("store", payload.len() as u64, payload.len() as u64, 0);
            return StoredObject::raw(payload);
        };
        let codec = codec_by_id(codec_id).expect("validated codec id");
        let t0 = Instant::now();
        let container = compress_blocks(&*codec, &payload, DEFAULT_BLOCK_SIZE);
        let ns = t0.elapsed().as_nanos() as u64;
        // Object-level store fallback: the container (plus the frame's
        // uncompressed-length extension) must beat the raw payload.
        if container.len() + FRAME_EXT_LEN >= payload.len() {
            self.metrics
                .on_encode("store", payload.len() as u64, payload.len() as u64, ns);
            return StoredObject::raw(payload);
        }
        self.metrics.on_encode(
            codec.name(),
            payload.len() as u64,
            (container.len() + FRAME_EXT_LEN) as u64,
            ns,
        );
        StoredObject {
            codec: codec_id,
            uncompressed_len: payload.len() as u64,
            payload: container,
        }
    }

    /// Adaptive selection: compress a prefix sample through each candidate
    /// and score `(1 − ratio) / flops_per_byte` — estimated bytes saved per
    /// unit encode cost. Returns `None` when storing wins.
    fn select(&self, payload: &[u8]) -> Option<u8> {
        let t0 = Instant::now();
        let sample = &payload[..payload.len().min(SAMPLE_LEN)];
        let mut best: Option<(u8, f64, f64)> = None; // (id, score, ratio)
        for id in ADAPTIVE_CANDIDATES {
            let codec = codec_by_id(id).expect("registered candidate");
            let packed = codec.compress(sample);
            let ratio = packed.len() as f64 / sample.len().max(1) as f64;
            let score = (1.0 - ratio) / codec.flops_per_byte().max(1.0);
            if best.is_none_or(|(_, s, _)| score > s) {
                best = Some((id, score, ratio));
            }
        }
        self.metrics.on_select(t0.elapsed().as_nanos() as u64);
        best.filter(|&(_, _, ratio)| ratio < STORE_RATIO)
            .map(|(id, _, _)| id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(policy: CompressionPolicy) -> (CompressionEngine, Arc<Registry>) {
        let reg = Arc::new(Registry::new());
        let metrics = Arc::new(CompressMetrics::bound(Arc::clone(&reg)));
        (CompressionEngine::new(policy, metrics), reg)
    }

    fn counters(vals: &[u32]) -> Vec<u8> {
        vals.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    fn noise(len: usize, mut seed: u64) -> Vec<u8> {
        (0..len)
            .map(|_| {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                seed as u8
            })
            .collect()
    }

    #[test]
    fn off_policy_is_a_passthrough_with_no_metrics() {
        let (eng, reg) = engine(CompressionPolicy::Off);
        let data = counters(&(0..100_000).map(|i| i / 9).collect::<Vec<_>>());
        let obj = eng.encode(data.clone());
        assert_eq!(obj.codec, 0);
        assert_eq!(obj.payload, data);
        // Lazy metrics: the schema must not grow when compression is off.
        assert!(!reg.snapshot_json().contains("compress/"));
    }

    #[test]
    fn fixed_policy_compresses_and_counts() {
        let (eng, reg) = engine(CompressionPolicy::Fixed(6));
        let data = counters(&(0..100_000).map(|i| i / 9).collect::<Vec<_>>());
        let obj = eng.encode(data.clone());
        assert_eq!(obj.codec, 6);
        assert_eq!(obj.uncompressed_len, data.len() as u64);
        assert!(obj.payload.len() < data.len() / 2);
        assert_eq!(obj.decode().unwrap(), data);
        let json = reg.snapshot_json();
        for key in [
            "compress/bytes_in",
            "compress/bytes_out",
            "compress/ratio_pct",
            "compress/encode_ns",
            "compress/objects/zstd",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(reg.gauge("compress/ratio_pct").get() < 100);
    }

    #[test]
    fn incompressible_objects_fall_back_to_store() {
        let (eng, reg) = engine(CompressionPolicy::Fixed(6));
        let noise = noise(50_000, 0x1234_5678);
        let obj = eng.encode(noise.clone());
        assert_eq!(obj.codec, 0, "noise must not be stored compressed");
        assert_eq!(obj.payload, noise);
        assert_eq!(reg.counter("compress/objects/store").get(), 1);
    }

    #[test]
    fn adaptive_picks_a_codec_on_counters_and_store_on_noise() {
        let (eng, _reg) = engine(CompressionPolicy::Adaptive);
        let data = counters(&(0..200_000).map(|i| i / 11).collect::<Vec<_>>());
        let obj = eng.encode(data.clone());
        assert_ne!(obj.codec, 0, "counter lanes are compressible");
        assert_eq!(obj.decode().unwrap(), data);

        let noise = noise(200_000, 0x9e37_79b9);
        let obj = eng.encode(noise.clone());
        assert_eq!(obj.codec, 0);
        assert_eq!(obj.payload, noise);
    }

    #[test]
    fn tiny_objects_skip_compression() {
        let (eng, reg) = engine(CompressionPolicy::Adaptive);
        let obj = eng.encode(vec![0u8; MIN_COMPRESS_LEN - 1]);
        assert_eq!(obj.codec, 0);
        assert_eq!(reg.counter("compress/objects/store").get(), 1);
        assert_eq!(reg.counter("compress/select_ns").get(), 0);
    }

    #[test]
    fn policy_parsing_round_trips() {
        assert_eq!(
            CompressionPolicy::parse("off"),
            Some(CompressionPolicy::Off)
        );
        assert_eq!(
            CompressionPolicy::parse("adaptive"),
            Some(CompressionPolicy::Adaptive)
        );
        assert_eq!(
            CompressionPolicy::parse("zstd"),
            Some(CompressionPolicy::Fixed(6))
        );
        assert_eq!(CompressionPolicy::parse("nope"), None);
        assert_eq!(CompressionPolicy::Fixed(6).label(), "zstd");
        assert_eq!(CompressionPolicy::Adaptive.label(), "adaptive");
    }
}
