//! Cross-rank redundancy groups: partner copies and XOR parity stripes.
//!
//! Multi-level checkpointing systems (FTI, SCR, VeloC) put a redundancy
//! level *between* node-local storage and the PFS: ranks form small groups
//! and each checkpoint object is either mirrored onto a partner rank or
//! XOR-parity-encoded across the group, so losing one whole node costs
//! nothing that the surviving group members cannot rebuild. This module is
//! that level for the simulated tier chain.
//!
//! # Encoding
//!
//! The flusher hands each framed, post-compression [`StoredObject`] to
//! [`RedundancyStore::encode_member`] right after the compression stage —
//! on the flusher thread, overlapped with the next checkpoint via the
//! depth-1 pipeline, so the producer's critical path is untouched.
//!
//! * **Partner** (`partner`): groups of two, `partner(r) = r ^ 1`. The full
//!   encoded object is copied into the group store, hosted on the partner.
//! * **XOR** (`xor:<k>`): SCR-style striping. Member `r` (group-local index
//!   `l = r % k`) splits its encoded payload into `k-1` chunks of
//!   `ceil(len / (k-1))` bytes; chunk `j` is assigned to stripe
//!   `s = j + (j >= l)` — every stripe *except* the member's own index —
//!   and the parity for stripe `s` is hosted on group-local rank `s`. A
//!   single rank loss therefore leaves every parity stripe a lost member
//!   needs alive on a surviving host; two losses in one group are
//!   unrecoverable by construction and surface as a typed error, never a
//!   wrong payload.
//!
//! Parity stripes are [`ckpt_dedup::frame::ParityRecord`]s carrying every
//! contributor's metadata (codec, lengths, chunk length, and a checksum of
//! its stored bytes), serialized as ordinary codec-0 payloads inside a
//! dedicated group [`Tier`] — so framing, fault injection and capacity
//! accounting come for free and legacy frames are untouched.
//!
//! # Reconstruction
//!
//! [`RedundancyStore::reconstruct`] rebuilds a member's stored object
//! bit-identically: partner mode reads the mirror; XOR mode fetches every
//! surviving contributor's object (via a caller-supplied closure over the
//! local tiers), XORs their chunks back out of each needed stripe, and
//! reassembles the payload. The result is verified against the member
//! checksum recorded at encode time — on any mismatch or missing piece the
//! caller gets a typed [`ReconstructError`].
//!
//! # GC gating
//!
//! [`RedundancyStore::compact_below`] mirrors the tier chain's
//! `compact_below`: partner copies below a rank's rebase floor drop
//! immediately, while an XOR parity stripe at checkpoint `c` only drops
//! once *every* member of the group has advanced its floor past `c` — a
//! stripe is useful exactly as long as any member might still need it.

use crate::tier::{ObjectId, ObjectState, StoredObject, Tier, TierConfig};
use ckpt_dedup::frame::{self, ParityMember, ParityRecord};
use ckpt_telemetry::{Counter, Registry};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, OnceLock};

/// How checkpoint objects are protected across ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RedundancyPolicy {
    /// No cross-rank protection (the pre-redundancy runtime, byte for
    /// byte).
    #[default]
    Off,
    /// Mirror each object onto its partner rank (`r ^ 1`); groups of two.
    Partner,
    /// XOR parity striping across groups of `group_size` consecutive
    /// ranks (`group_size >= 2`).
    Xor { group_size: u32 },
}

impl RedundancyPolicy {
    /// Parse a CLI/bench spelling: `off`, `partner`, or `xor:<k>`.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "off" | "none" => Some(RedundancyPolicy::Off),
            "partner" => Some(RedundancyPolicy::Partner),
            _ => {
                let k = s.strip_prefix("xor:")?.parse::<u32>().ok()?;
                (k >= 2).then_some(RedundancyPolicy::Xor { group_size: k })
            }
        }
    }

    pub fn label(&self) -> String {
        match self {
            RedundancyPolicy::Off => "off".into(),
            RedundancyPolicy::Partner => "partner".into(),
            RedundancyPolicy::Xor { group_size } => format!("xor:{group_size}"),
        }
    }

    /// Ranks per redundancy group (1 when off).
    pub fn group_size(&self) -> u32 {
        match self {
            RedundancyPolicy::Off => 1,
            RedundancyPolicy::Partner => 2,
            RedundancyPolicy::Xor { group_size } => *group_size,
        }
    }

    /// The group a rank belongs to.
    pub fn group_of(&self, rank: u32) -> u32 {
        rank / self.group_size().max(1)
    }
}

/// Why a group reconstruction failed. Every variant maps to `LostCorrupt`
/// at the recovery layer: the group *knew* the object but cannot prove a
/// bit-identical rebuild.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconstructError {
    /// The store never encoded this member (nothing to rebuild from).
    UnknownMember,
    /// A needed group copy / parity stripe is gone (e.g. its host rank was
    /// also lost — two losses in one group).
    MissingGroupCopy,
    /// A needed group copy / parity stripe is present but fails
    /// verification.
    CorruptGroupCopy,
    /// A surviving contributor's object could not be fetched from any
    /// local tier (simultaneous loss elsewhere in the group).
    MissingSurvivor { rank: u32 },
    /// The reassembled payload failed the member checksum recorded at
    /// encode time.
    ChecksumMismatch,
}

impl std::fmt::Display for ReconstructError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReconstructError::UnknownMember => write!(f, "member was never group-encoded"),
            ReconstructError::MissingGroupCopy => write!(f, "group copy/parity stripe missing"),
            ReconstructError::CorruptGroupCopy => write!(f, "group copy/parity stripe corrupt"),
            ReconstructError::MissingSurvivor { rank } => {
                write!(f, "surviving member {rank} unavailable for parity rebuild")
            }
            ReconstructError::ChecksumMismatch => {
                write!(f, "reconstructed payload failed member checksum")
            }
        }
    }
}

impl std::error::Error for ReconstructError {}

/// `redundancy/*` telemetry. Every metric registers lazily on first event,
/// so runs with redundancy off export exactly the pre-existing schema.
///
/// | metric | kind | meaning |
/// |---|---|---|
/// | `redundancy/partner_copies` | counter | objects mirrored onto a partner |
/// | `redundancy/parity_updates` | counter | parity stripe merges performed |
/// | `redundancy/bytes_stored` | counter | bytes written into the group store |
/// | `redundancy/restored_objects` | counter | objects rebuilt from the group |
/// | `redundancy/restore_failures` | counter | known members that failed to rebuild |
/// | `redundancy/rank_losses` | counter | `RankLoss` faults applied to the chain |
pub struct RedundancyMetrics {
    registry: Option<Arc<Registry>>,
    partner_copies: OnceLock<Arc<Counter>>,
    parity_updates: OnceLock<Arc<Counter>>,
    bytes_stored: OnceLock<Arc<Counter>>,
    restored_objects: OnceLock<Arc<Counter>>,
    restore_failures: OnceLock<Arc<Counter>>,
    rank_losses: OnceLock<Arc<Counter>>,
}

impl RedundancyMetrics {
    pub fn bound(registry: Arc<Registry>) -> Self {
        RedundancyMetrics {
            registry: Some(registry),
            ..Self::detached()
        }
    }

    /// A sink that counts nothing (stores built without telemetry).
    pub fn detached() -> Self {
        RedundancyMetrics {
            registry: None,
            partner_copies: OnceLock::new(),
            parity_updates: OnceLock::new(),
            bytes_stored: OnceLock::new(),
            restored_objects: OnceLock::new(),
            restore_failures: OnceLock::new(),
            rank_losses: OnceLock::new(),
        }
    }

    fn lazy<'a>(
        &'a self,
        slot: &'a OnceLock<Arc<Counter>>,
        name: &'static str,
    ) -> Option<&'a Arc<Counter>> {
        self.registry
            .as_ref()
            .map(|r| slot.get_or_init(|| r.counter(name)))
    }

    fn on_partner_copy(&self, bytes: u64) {
        if let Some(c) = self.lazy(&self.partner_copies, "redundancy/partner_copies") {
            c.inc();
        }
        if let Some(c) = self.lazy(&self.bytes_stored, "redundancy/bytes_stored") {
            c.add(bytes);
        }
    }

    fn on_parity_update(&self, bytes: u64) {
        if let Some(c) = self.lazy(&self.parity_updates, "redundancy/parity_updates") {
            c.inc();
        }
        if let Some(c) = self.lazy(&self.bytes_stored, "redundancy/bytes_stored") {
            c.add(bytes);
        }
    }

    pub(crate) fn on_restored(&self) {
        if let Some(c) = self.lazy(&self.restored_objects, "redundancy/restored_objects") {
            c.inc();
        }
    }

    pub(crate) fn on_restore_failure(&self) {
        if let Some(c) = self.lazy(&self.restore_failures, "redundancy/restore_failures") {
            c.inc();
        }
    }

    pub(crate) fn on_rank_loss(&self) {
        if let Some(c) = self.lazy(&self.rank_losses, "redundancy/rank_losses") {
            c.inc();
        }
    }
}

/// Per-member metadata kept by the store (mirrors what travels inside
/// parity records) so "does the group know this object" and verification
/// survive the loss of the member's own copies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct MemberMeta {
    codec: u8,
    uncompressed_len: u64,
    stored_len: u64,
    chunk_len: u64,
    checksum: u64,
}

impl MemberMeta {
    fn to_parity(self, rank: u32) -> ParityMember {
        ParityMember {
            rank,
            codec: self.codec,
            uncompressed_len: self.uncompressed_len,
            stored_len: self.stored_len,
            chunk_len: self.chunk_len,
            checksum: self.checksum,
        }
    }
}

/// Bounded retries against the group tier, mirroring the flusher's policy:
/// transient faults are expected to clear on retry.
const MAX_GROUP_STORE_ATTEMPTS: usize = 4;

/// The cross-rank redundancy level: a dedicated group [`Tier`] holding
/// partner copies / parity stripes, plus the member and hosting metadata
/// needed to wipe the right objects on a rank loss and to rebuild lost
/// members.
pub struct RedundancyStore {
    policy: RedundancyPolicy,
    /// Group objects, framed like any other tier object. Keys: the member
    /// id itself for partner copies; `(hosting_rank, ckpt_id)` for XOR
    /// parity stripes.
    group: Tier,
    /// Which rank hosts each group object (wiped with that rank).
    hosts: Mutex<HashMap<ObjectId, u32>>,
    /// Every member the group has encoded, with its verification metadata.
    members: Mutex<HashMap<ObjectId, MemberMeta>>,
    /// Ids already encoded (idempotence across degraded re-flushes).
    encoded: Mutex<HashSet<ObjectId>>,
    /// Per-rank GC floors (see [`compact_below`](Self::compact_below)).
    floors: Mutex<HashMap<u32, u32>>,
    metrics: RedundancyMetrics,
}

impl RedundancyStore {
    pub fn new(policy: RedundancyPolicy, metrics: RedundancyMetrics) -> Self {
        assert!(
            policy != RedundancyPolicy::Off,
            "an Off-policy chain carries no redundancy store"
        );
        RedundancyStore {
            policy,
            group: Tier::new(TierConfig::group()),
            hosts: Mutex::new(HashMap::new()),
            members: Mutex::new(HashMap::new()),
            encoded: Mutex::new(HashSet::new()),
            floors: Mutex::new(HashMap::new()),
            metrics,
        }
    }

    pub fn policy(&self) -> RedundancyPolicy {
        self.policy
    }

    /// The underlying group tier (modeled time, accounting, fault binding).
    pub fn group_tier(&self) -> &Tier {
        &self.group
    }

    pub(crate) fn metrics(&self) -> &RedundancyMetrics {
        &self.metrics
    }

    /// Whether the given member's redundancy encoding is durable in the
    /// group store (the GC gate for `compact_below`).
    pub fn is_encoded(&self, id: ObjectId) -> bool {
        self.encoded.lock().contains(&id)
    }

    /// Whether the group has metadata for this member (even if its copies
    /// were since lost — the distinction between `LostCorrupt` and
    /// `LostVolatile` for wiped ranks).
    pub fn knows_member(&self, id: ObjectId) -> bool {
        self.members.lock().contains_key(&id)
    }

    /// Every member id the group has encoded (sorted).
    pub fn member_ids(&self) -> Vec<ObjectId> {
        let mut ids: Vec<ObjectId> = self.members.lock().keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    fn member_checksum(id: ObjectId, object: &StoredObject) -> u64 {
        frame::checksum64_region(id.0, id.1, object.codec, &object.payload)
    }

    fn store_with_retry(&self, key: ObjectId, object: StoredObject) -> bool {
        let mut object = object;
        for _ in 0..MAX_GROUP_STORE_ATTEMPTS {
            match self.group.store_object(key, object) {
                Ok(()) => return true,
                Err(e) => {
                    if e.kind == crate::tier::StoreErrorKind::Full {
                        return false;
                    }
                    object = e.object;
                }
            }
        }
        false
    }

    /// Protect one member's encoded object across its group. Idempotent:
    /// re-encoding an already-protected id (degraded re-flushes) is a
    /// no-op. Runs on the flusher thread, off the producer's critical path.
    pub fn encode_member(&self, id: ObjectId, object: &StoredObject) {
        if !self.encoded.lock().insert(id) {
            return;
        }
        let meta = MemberMeta {
            codec: object.codec,
            uncompressed_len: object.uncompressed_len,
            stored_len: object.payload.len() as u64,
            chunk_len: 0,
            checksum: Self::member_checksum(id, object),
        };
        match self.policy {
            RedundancyPolicy::Off => unreachable!("Off carries no store"),
            RedundancyPolicy::Partner => {
                if self.store_with_retry(id, object.clone()) {
                    self.hosts.lock().insert(id, id.0 ^ 1);
                    self.members.lock().insert(id, meta);
                    self.metrics.on_partner_copy(object.stored_len());
                } else {
                    self.encoded.lock().remove(&id);
                }
            }
            RedundancyPolicy::Xor { group_size } => {
                self.encode_xor(id, object, meta, group_size as usize);
            }
        }
    }

    fn encode_xor(&self, id: ObjectId, object: &StoredObject, mut meta: MemberMeta, k: usize) {
        let (rank, ckpt) = (id.0 as usize, id.1);
        let (g, l) = (rank / k, rank % k);
        let len = object.payload.len();
        let chunk_len = len.div_ceil(k - 1);
        meta.chunk_len = chunk_len as u64;
        let mut all_ok = true;
        for j in 0..k - 1 {
            let s = if j >= l { j + 1 } else { j };
            let host = (g * k + s) as u32;
            let key = (host, ckpt);
            let mut rec = match self.group.inspect_object(key).into_object() {
                Some(obj) => ParityRecord::decode(&obj.payload).unwrap_or_default(),
                None => ParityRecord::default(),
            };
            rec.group = g as u32;
            rec.stripe = s as u32;
            rec.ckpt_id = ckpt;
            if rec.parity.len() < chunk_len {
                rec.parity.resize(chunk_len, 0);
            }
            let lo = j * chunk_len;
            let hi = ((j + 1) * chunk_len).min(len);
            if lo < len {
                for (i, b) in object.payload[lo..hi].iter().enumerate() {
                    rec.parity[i] ^= b;
                }
            }
            rec.members.retain(|m| m.rank != id.0);
            rec.members.push(meta.to_parity(id.0));
            rec.members.sort_by_key(|m| m.rank);
            let bytes = rec.encode();
            let stored = bytes.len() as u64;
            if self.store_with_retry(key, StoredObject::raw(bytes)) {
                self.hosts.lock().insert(key, host);
                self.metrics.on_parity_update(stored);
            } else {
                all_ok = false;
            }
        }
        if all_ok {
            self.members.lock().insert(id, meta);
        } else {
            self.encoded.lock().remove(&id);
        }
    }

    /// Rebuild one member's stored object bit-identically from the group.
    /// `fetch` resolves a surviving contributor's encoded object from the
    /// local tiers (XOR only; partner mode needs no survivors). The result
    /// is verified against the checksum recorded at encode time — a wrong
    /// payload is never returned.
    pub fn reconstruct(
        &self,
        id: ObjectId,
        fetch: &dyn Fn(ObjectId) -> Option<StoredObject>,
    ) -> Result<StoredObject, ReconstructError> {
        let meta = self
            .members
            .lock()
            .get(&id)
            .copied()
            .ok_or(ReconstructError::UnknownMember)?;
        let object = match self.policy {
            RedundancyPolicy::Off => return Err(ReconstructError::UnknownMember),
            RedundancyPolicy::Partner => match self.group.inspect_object(id) {
                ObjectState::Valid(obj) => obj,
                ObjectState::Missing => return Err(ReconstructError::MissingGroupCopy),
                _ => return Err(ReconstructError::CorruptGroupCopy),
            },
            RedundancyPolicy::Xor { group_size } => {
                self.reconstruct_xor(id, meta, group_size as usize, fetch)?
            }
        };
        let ok = object.codec == meta.codec
            && object.payload.len() as u64 == meta.stored_len
            && Self::member_checksum(id, &object) == meta.checksum;
        if ok {
            Ok(object)
        } else {
            Err(ReconstructError::ChecksumMismatch)
        }
    }

    fn reconstruct_xor(
        &self,
        id: ObjectId,
        meta: MemberMeta,
        k: usize,
        fetch: &dyn Fn(ObjectId) -> Option<StoredObject>,
    ) -> Result<StoredObject, ReconstructError> {
        let (rank, ckpt) = (id.0 as usize, id.1);
        let (g, l) = (rank / k, rank % k);
        let chunk_len = meta.chunk_len as usize;
        let mut payload = Vec::with_capacity(meta.stored_len as usize);
        let mut fetched: HashMap<u32, StoredObject> = HashMap::new();
        for j in 0..k - 1 {
            let s = if j >= l { j + 1 } else { j };
            let key = ((g * k + s) as u32, ckpt);
            let rec = match self.group.inspect_object(key) {
                ObjectState::Valid(obj) => ParityRecord::decode(&obj.payload)
                    .map_err(|_| ReconstructError::CorruptGroupCopy)?,
                ObjectState::Missing => return Err(ReconstructError::MissingGroupCopy),
                _ => return Err(ReconstructError::CorruptGroupCopy),
            };
            let mut chunk = rec.parity.clone();
            for m in &rec.members {
                if m.rank == id.0 {
                    continue;
                }
                if let std::collections::hash_map::Entry::Vacant(e) = fetched.entry(m.rank) {
                    let obj = fetch((m.rank, ckpt))
                        .ok_or(ReconstructError::MissingSurvivor { rank: m.rank })?;
                    // A survivor whose bytes drifted from what was encoded
                    // would silently poison the XOR — verify up front.
                    if obj.payload.len() as u64 != m.stored_len
                        || Self::member_checksum((m.rank, ckpt), &obj) != m.checksum
                    {
                        return Err(ReconstructError::MissingSurvivor { rank: m.rank });
                    }
                    e.insert(obj);
                }
                let obj = &fetched[&m.rank];
                let lm = (m.rank as usize) % k;
                let jm = if s > lm { s - 1 } else { s };
                let ml = m.chunk_len as usize;
                let lo = (jm * ml).min(obj.payload.len());
                let hi = ((jm + 1) * ml).min(obj.payload.len());
                if chunk.len() < hi - lo {
                    return Err(ReconstructError::CorruptGroupCopy);
                }
                for (i, b) in obj.payload[lo..hi].iter().enumerate() {
                    chunk[i] ^= b;
                }
            }
            chunk.resize(chunk_len, 0);
            payload.extend_from_slice(&chunk);
        }
        payload.truncate(meta.stored_len as usize);
        if payload.len() as u64 != meta.stored_len {
            return Err(ReconstructError::ChecksumMismatch);
        }
        Ok(StoredObject {
            codec: meta.codec,
            uncompressed_len: meta.uncompressed_len,
            payload,
        })
    }

    /// Serialize the policy and member metadata as a small line-oriented
    /// manifest (`policy <label>` then one `member` line per id) so a CLI
    /// record directory can persist group state next to the exported group
    /// objects.
    pub fn export_manifest(&self) -> String {
        let mut out = format!("policy {}\n", self.policy.label());
        let ids = self.member_ids();
        let members = self.members.lock();
        for id in ids {
            let m = members[&id];
            out.push_str(&format!(
                "member {} {} {} {} {} {} {:016x}\n",
                id.0, id.1, m.codec, m.uncompressed_len, m.stored_len, m.chunk_len, m.checksum
            ));
        }
        out
    }

    /// Rebuild a store (detached metrics) from [`export_manifest`] output.
    /// The caller re-inserts the exported group objects into
    /// [`group_tier`](Self::group_tier) afterwards. Returns `None` on any
    /// malformed line — a truncated manifest must not half-load.
    pub fn from_manifest(text: &str) -> Option<RedundancyStore> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let policy = RedundancyPolicy::parse(lines.next()?.strip_prefix("policy ")?)?;
        if policy == RedundancyPolicy::Off {
            return None;
        }
        let store = RedundancyStore::new(policy, RedundancyMetrics::detached());
        for line in lines {
            let mut f = line.strip_prefix("member ")?.split_whitespace();
            let rank: u32 = f.next()?.parse().ok()?;
            let ckpt: u32 = f.next()?.parse().ok()?;
            let meta = MemberMeta {
                codec: f.next()?.parse().ok()?,
                uncompressed_len: f.next()?.parse().ok()?,
                stored_len: f.next()?.parse().ok()?,
                chunk_len: f.next()?.parse().ok()?,
                checksum: u64::from_str_radix(f.next()?, 16).ok()?,
            };
            store.members.lock().insert((rank, ckpt), meta);
            store.encoded.lock().insert((rank, ckpt));
        }
        Some(store)
    }

    /// Wipe every group object hosted on a lost rank (applied by the tier
    /// chain when a `RankLoss` fault is polled). Member metadata survives —
    /// cluster metadata is replicated in these systems — so a wiped member
    /// is still *known*, which is what distinguishes `LostCorrupt` from
    /// `LostVolatile` at recovery time.
    pub fn apply_rank_loss(&self, rank: u32) -> usize {
        let keys: Vec<ObjectId> = {
            let hosts = self.hosts.lock();
            hosts
                .iter()
                .filter(|&(_, &h)| h == rank)
                .map(|(&k, _)| k)
                .collect()
        };
        let mut wiped = 0;
        for key in keys {
            if self.group.evict(key) {
                wiped += 1;
            }
            self.hosts.lock().remove(&key);
        }
        self.metrics.on_rank_loss();
        wiped
    }

    /// Advance `rank`'s GC floor to `below` and drop group objects nothing
    /// can need anymore: partner copies of this rank below the floor
    /// immediately; XOR parity stripes of the group only below the
    /// *minimum* floor across all its members. Returns evicted objects.
    pub fn compact_below(&self, rank: u32, below: u32) -> usize {
        {
            let mut floors = self.floors.lock();
            let f = floors.entry(rank).or_insert(0);
            *f = (*f).max(below);
        }
        let mut evicted = 0;
        match self.policy {
            RedundancyPolicy::Off => {}
            RedundancyPolicy::Partner => {
                let ids: Vec<ObjectId> = self
                    .members
                    .lock()
                    .keys()
                    .filter(|&&(r, c)| r == rank && c < below)
                    .copied()
                    .collect();
                for id in ids {
                    if self.group.evict(id) {
                        evicted += 1;
                    }
                    self.hosts.lock().remove(&id);
                    self.members.lock().remove(&id);
                }
            }
            RedundancyPolicy::Xor { group_size } => {
                let k = group_size;
                let g = rank / k;
                let group_ranks = g * k..(g + 1) * k;
                let min_floor = {
                    let floors = self.floors.lock();
                    group_ranks
                        .clone()
                        .map(|r| floors.get(&r).copied().unwrap_or(0))
                        .min()
                        .unwrap_or(0)
                };
                let stripe_ids: Vec<ObjectId> = self
                    .group
                    .resident()
                    .into_iter()
                    .filter(|&(h, c)| group_ranks.contains(&h) && c < min_floor)
                    .collect();
                for key in stripe_ids {
                    if self.group.evict(key) {
                        evicted += 1;
                    }
                    self.hosts.lock().remove(&key);
                }
                self.members
                    .lock()
                    .retain(|&(r, c), _| !(group_ranks.contains(&r) && c < min_floor));
            }
        }
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(policy: RedundancyPolicy) -> RedundancyStore {
        RedundancyStore::new(policy, RedundancyMetrics::detached())
    }

    fn payload(rank: u32, ckpt: u32, len: usize) -> StoredObject {
        StoredObject::raw(
            (0..len)
                .map(|i| {
                    (i as u32)
                        .wrapping_mul(2654435761)
                        .wrapping_add(rank * 7919 + ckpt * 104729) as u8
                })
                .collect(),
        )
    }

    fn no_fetch(_: ObjectId) -> Option<StoredObject> {
        None
    }

    #[test]
    fn policy_parsing_round_trips() {
        assert_eq!(RedundancyPolicy::parse("off"), Some(RedundancyPolicy::Off));
        assert_eq!(
            RedundancyPolicy::parse("partner"),
            Some(RedundancyPolicy::Partner)
        );
        assert_eq!(
            RedundancyPolicy::parse("xor:4"),
            Some(RedundancyPolicy::Xor { group_size: 4 })
        );
        assert_eq!(RedundancyPolicy::parse("xor:1"), None);
        assert_eq!(RedundancyPolicy::parse("xor:"), None);
        assert_eq!(RedundancyPolicy::parse("raid6"), None);
        assert_eq!(RedundancyPolicy::Xor { group_size: 8 }.label(), "xor:8");
        assert_eq!(RedundancyPolicy::Partner.group_size(), 2);
        assert_eq!(RedundancyPolicy::Xor { group_size: 4 }.group_of(7), 1);
    }

    #[test]
    fn partner_copy_reconstructs_bit_identically() {
        let s = store(RedundancyPolicy::Partner);
        let obj = payload(2, 5, 4096);
        s.encode_member((2, 5), &obj);
        assert!(s.is_encoded((2, 5)));
        assert!(s.knows_member((2, 5)));
        assert_eq!(s.reconstruct((2, 5), &no_fetch).unwrap(), obj);
        // Losing the partner host (rank 3) wipes the copy: typed error.
        s.apply_rank_loss(3);
        assert_eq!(
            s.reconstruct((2, 5), &no_fetch).unwrap_err(),
            ReconstructError::MissingGroupCopy
        );
        assert!(s.knows_member((2, 5)), "metadata survives the wipe");
    }

    #[test]
    fn xor_reconstructs_any_single_lost_member() {
        for k in [2u32, 3, 4, 5] {
            let s = store(RedundancyPolicy::Xor { group_size: k });
            // Uneven sizes exercise the zero-padding paths.
            let objs: Vec<StoredObject> = (0..k)
                .map(|r| payload(r, 1, 1000 + 613 * r as usize))
                .collect();
            for (r, obj) in objs.iter().enumerate() {
                s.encode_member((r as u32, 1), obj);
            }
            for lost in 0..k {
                let fetch = |mid: ObjectId| -> Option<StoredObject> {
                    (mid.0 != lost && mid.1 == 1).then(|| objs[mid.0 as usize].clone())
                };
                let got = s.reconstruct((lost, 1), &fetch).unwrap_or_else(|e| {
                    panic!("k={k} lost={lost}: {e}");
                });
                assert_eq!(got, objs[lost as usize], "k={k} lost={lost}");
            }
        }
    }

    #[test]
    fn xor_double_loss_is_typed_never_wrong() {
        let k = 4u32;
        let s = store(RedundancyPolicy::Xor { group_size: k });
        let objs: Vec<StoredObject> = (0..k).map(|r| payload(r, 0, 2048)).collect();
        for (r, obj) in objs.iter().enumerate() {
            s.encode_member((r as u32, 0), obj);
        }
        // Ranks 1 and 2 both lost: stripes hosted there are gone AND rank
        // 2 cannot serve as a survivor for rank 1's rebuild.
        s.apply_rank_loss(1);
        s.apply_rank_loss(2);
        let fetch = |mid: ObjectId| -> Option<StoredObject> {
            (mid.0 != 1 && mid.0 != 2).then(|| objs[mid.0 as usize].clone())
        };
        for lost in [1u32, 2] {
            let err = s.reconstruct((lost, 0), &fetch).unwrap_err();
            assert!(
                matches!(
                    err,
                    ReconstructError::MissingGroupCopy | ReconstructError::MissingSurvivor { .. }
                ),
                "double loss must be typed, got {err:?}"
            );
        }
    }

    #[test]
    fn xor_detects_drifted_survivor() {
        let k = 3u32;
        let s = store(RedundancyPolicy::Xor { group_size: k });
        let objs: Vec<StoredObject> = (0..k).map(|r| payload(r, 2, 512)).collect();
        for (r, obj) in objs.iter().enumerate() {
            s.encode_member((r as u32, 2), obj);
        }
        // Survivor 1 hands back different bytes than were encoded.
        let fetch = |mid: ObjectId| -> Option<StoredObject> {
            if mid.0 == 0 {
                return None;
            }
            let mut obj = objs[mid.0 as usize].clone();
            if mid.0 == 1 {
                obj.payload[17] ^= 0x40;
            }
            Some(obj)
        };
        assert_eq!(
            s.reconstruct((0, 2), &fetch).unwrap_err(),
            ReconstructError::MissingSurvivor { rank: 1 }
        );
    }

    #[test]
    fn encode_is_idempotent() {
        let s = store(RedundancyPolicy::Xor { group_size: 3 });
        let obj = payload(0, 0, 1024);
        s.encode_member((0, 0), &obj);
        let before = s.group_tier().bytes_written();
        s.encode_member((0, 0), &obj);
        assert_eq!(s.group_tier().bytes_written(), before);
    }

    #[test]
    fn unknown_member_is_typed() {
        let s = store(RedundancyPolicy::Partner);
        assert_eq!(
            s.reconstruct((9, 9), &no_fetch).unwrap_err(),
            ReconstructError::UnknownMember
        );
    }

    #[test]
    fn partner_compaction_drops_below_floor() {
        let s = store(RedundancyPolicy::Partner);
        for c in 0..4u32 {
            s.encode_member((0, c), &payload(0, c, 256));
        }
        assert_eq!(s.compact_below(0, 2), 2);
        assert!(!s.knows_member((0, 1)));
        assert!(s.knows_member((0, 2)));
        assert_eq!(
            s.reconstruct((0, 3), &no_fetch).unwrap(),
            payload(0, 3, 256)
        );
    }

    #[test]
    fn xor_stripes_survive_until_every_member_advances() {
        let k = 3u32;
        let s = store(RedundancyPolicy::Xor { group_size: k });
        let objs: Vec<StoredObject> = (0..k).map(|r| payload(r, 0, 700)).collect();
        for (r, obj) in objs.iter().enumerate() {
            s.encode_member((r as u32, 0), obj);
        }
        // Two of three members advance: stripes must survive for the
        // straggler.
        assert_eq!(s.compact_below(0, 1), 0);
        assert_eq!(s.compact_below(1, 1), 0);
        let fetch = |mid: ObjectId| -> Option<StoredObject> {
            (mid.0 != 2).then(|| objs[mid.0 as usize].clone())
        };
        assert_eq!(s.reconstruct((2, 0), &fetch).unwrap(), objs[2]);
        // The straggler advances: now the stripes drop.
        assert!(s.compact_below(2, 1) > 0);
        assert!(!s.knows_member((2, 0)));
    }

    #[test]
    fn manifest_round_trips_members_and_policy() {
        let s = store(RedundancyPolicy::Xor { group_size: 3 });
        let objs: Vec<StoredObject> = (0..3).map(|r| payload(r, 4, 800)).collect();
        for (r, obj) in objs.iter().enumerate() {
            s.encode_member((r as u32, 4), obj);
        }
        let manifest = s.export_manifest();
        let loaded = RedundancyStore::from_manifest(&manifest).unwrap();
        assert_eq!(loaded.policy(), s.policy());
        assert_eq!(loaded.member_ids(), s.member_ids());
        assert!(loaded.is_encoded((1, 4)));
        // Re-hydrate the group tier and reconstruct through the clone.
        for key in s.group_tier().resident() {
            let obj = s.group_tier().inspect_object(key).into_object().unwrap();
            loaded.group_tier().store_object(key, obj).unwrap();
        }
        let fetch = |mid: ObjectId| -> Option<StoredObject> {
            (mid.0 != 1).then(|| objs[mid.0 as usize].clone())
        };
        assert_eq!(loaded.reconstruct((1, 4), &fetch).unwrap(), objs[1]);
        assert!(RedundancyStore::from_manifest("policy off").is_none());
        assert!(RedundancyStore::from_manifest("member 0 0").is_none());
    }

    #[test]
    fn empty_payload_round_trips_through_xor() {
        let k = 3u32;
        let s = store(RedundancyPolicy::Xor { group_size: k });
        let objs: Vec<StoredObject> = (0..k)
            .map(|r| {
                if r == 1 {
                    StoredObject::raw(Vec::new())
                } else {
                    payload(r, 0, 300)
                }
            })
            .collect();
        for (r, obj) in objs.iter().enumerate() {
            s.encode_member((r as u32, 0), obj);
        }
        for lost in 0..k {
            let fetch = |mid: ObjectId| -> Option<StoredObject> {
                (mid.0 != lost).then(|| objs[mid.0 as usize].clone())
            };
            assert_eq!(
                s.reconstruct((lost, 0), &fetch).unwrap(),
                objs[lost as usize],
                "lost={lost}"
            );
        }
    }
}
