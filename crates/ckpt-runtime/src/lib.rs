//! Multi-level asynchronous checkpointing runtime (the paper's Fig. 3
//! architecture, VeloC-style).
//!
//! Application processes de-duplicate on their (simulated) GPU, hand the
//! consolidated diff to this runtime, and resume computing; a background
//! flusher drains host memory → node-local SSD → parallel file system with
//! modeled tier bandwidths. The runtime also provides the restart path:
//! recovering the durable prefix of each rank's record after a failure and
//! replaying it back into checkpoint contents.
//!
//! * [`tier`] — simulated storage tiers with bandwidth/capacity accounting
//!   and integrity framing;
//! * [`compress`] — the post-dedup compression stage: per-object adaptive
//!   codec selection, pool-parallel encode, lazy `compress/*` telemetry;
//! * [`fault`] — deterministic, seedable fault injection;
//! * [`integrity`] — frame-verification counters and recovery reports;
//! * [`runtime`] — the asynchronous flusher with retry/degradation and
//!   failure injection;
//! * [`pipeline`] — the double-buffered submit tail that overlaps one
//!   checkpoint's serialize/D2H/submit with the next one's hashing;
//! * [`redundancy`] — cross-rank redundancy groups (partner copy / XOR
//!   parity) enabling cluster-level rank-loss recovery;
//! * [`rankdedup`] — the cluster-wide content-addressed dedup index:
//!   hash-space sharding across a group's ranks, asynchronous
//!   first-occurrence claim exchange, cross-rank reference records;
//! * [`lineage`] — record collection and sequential restoration;
//! * [`restore`] — the parallel restart engine: prefetched tier reads
//!   feeding a single-pass resolution walk;
//! * [`coordinator`] — the multi-rank strong-scaling harness (Fig. 6).

pub mod compress;
pub mod coordinator;
pub mod fault;
pub mod integrity;
pub mod lineage;
pub mod pipeline;
pub mod rankdedup;
pub mod redundancy;
pub mod restore;
pub mod runtime;
pub mod tier;

pub use compress::{CompressMetrics, CompressionEngine, CompressionPolicy};
pub use coordinator::{
    compact_below, run_scaling, RebasePolicy, ScalingConfig, ScalingMethod, ScalingReport,
};
pub use fault::{
    FaultKind, FaultPlan, FaultPlanBuilder, FaultSpec, FiredFault, OpKind, SplitMix64,
};
pub use integrity::{
    IntegrityCounters, ObjectStatus, RankRecovery, RecoveredObject, RecoveryReport,
};
pub use lineage::{
    collect_record, restore_rank, restore_rank_latest, restore_rank_with_report, LineageError,
};
pub use pipeline::{CheckpointPipeline, PipelineStats, ProduceFn};
pub use rankdedup::{
    resolve_record, ClaimBatch, ClaimExchange, ClaimLoc, RankDedupConfig, RankDedupEngine,
    RankDedupError, RankDedupIndex, RankDedupMetrics,
};
pub use redundancy::{ReconstructError, RedundancyMetrics, RedundancyPolicy, RedundancyStore};
pub use restore::{restore_rank_latest_parallel, ParallelRestoreOutcome};
pub use runtime::{AsyncRuntime, TierChain};
pub use tier::{
    FrameState, ObjectState, StoreError, StoreErrorKind, StoredObject, Tier, TierConfig,
};
