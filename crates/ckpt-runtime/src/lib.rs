//! Multi-level asynchronous checkpointing runtime (the paper's Fig. 3
//! architecture, VeloC-style).
//!
//! Application processes de-duplicate on their (simulated) GPU, hand the
//! consolidated diff to this runtime, and resume computing; a background
//! flusher drains host memory → node-local SSD → parallel file system with
//! modeled tier bandwidths. The runtime also provides the restart path:
//! recovering the durable prefix of each rank's record after a failure and
//! replaying it back into checkpoint contents.
//!
//! * [`tier`] — simulated storage tiers with bandwidth/capacity accounting
//!   and integrity framing;
//! * [`fault`] — deterministic, seedable fault injection;
//! * [`integrity`] — frame-verification counters and recovery reports;
//! * [`runtime`] — the asynchronous flusher with retry/degradation and
//!   failure injection;
//! * [`pipeline`] — the double-buffered submit tail that overlaps one
//!   checkpoint's serialize/D2H/submit with the next one's hashing;
//! * [`lineage`] — record collection and restoration;
//! * [`coordinator`] — the multi-rank strong-scaling harness (Fig. 6).

pub mod coordinator;
pub mod fault;
pub mod integrity;
pub mod lineage;
pub mod pipeline;
pub mod runtime;
pub mod tier;

pub use coordinator::{run_scaling, ScalingConfig, ScalingMethod, ScalingReport};
pub use fault::{
    FaultKind, FaultPlan, FaultPlanBuilder, FaultSpec, FiredFault, OpKind, SplitMix64,
};
pub use integrity::{
    IntegrityCounters, ObjectStatus, RankRecovery, RecoveredObject, RecoveryReport,
};
pub use lineage::{restore_rank, restore_rank_latest, restore_rank_with_report};
pub use pipeline::{CheckpointPipeline, PipelineStats, ProduceFn};
pub use runtime::{AsyncRuntime, TierChain};
pub use tier::{FrameState, StoreError, StoreErrorKind, Tier, TierConfig};
