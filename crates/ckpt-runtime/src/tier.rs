//! Simulated storage tiers.
//!
//! The paper's architecture (Fig. 3) drains checkpoints down a hierarchy:
//! GPU memory → host memory → node-local SSD → parallel file system. Each
//! tier here is an in-memory object store with a bandwidth model: writes
//! accumulate *modeled* busy time (`bytes / bandwidth`, shared by every
//! writer, which is exactly the contention the paper describes for the
//! PFS), plus capacity accounting so experiments can observe tiers filling
//! up.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Identifies one checkpoint object: `(rank, ckpt_id)`.
pub type ObjectId = (u32, u32);

/// Static tier parameters.
#[derive(Debug, Clone, Copy)]
pub struct TierConfig {
    pub name: &'static str,
    /// Aggregate write bandwidth in bytes/second, shared by all writers.
    pub bandwidth_bps: f64,
    /// Capacity in bytes (writes beyond it fail).
    pub capacity: u64,
}

impl TierConfig {
    /// Host DRAM staging: PCIe-fed, effectively one device link per rank.
    pub fn host() -> Self {
        TierConfig {
            name: "host",
            bandwidth_bps: 25.0e9,
            capacity: 512 << 30,
        }
    }

    /// Node-local NVMe SSD (Polaris: two 1.6 TB drives).
    pub fn ssd() -> Self {
        TierConfig {
            name: "ssd",
            bandwidth_bps: 2.0e9,
            capacity: 3200 << 30,
        }
    }

    /// Lustre parallel file system (ThetaGPU: 250 GB/s aggregate).
    pub fn pfs() -> Self {
        TierConfig {
            name: "pfs",
            bandwidth_bps: 250.0e9,
            capacity: u64::MAX,
        }
    }
}

/// One simulated storage tier.
pub struct Tier {
    cfg: TierConfig,
    objects: Mutex<HashMap<ObjectId, Vec<u8>>>,
    used: AtomicU64,
    bytes_written: AtomicU64,
    /// Modeled cumulative busy time in femtoseconds.
    busy_femtos: AtomicU64,
}

/// Error for writes that exceed tier capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierFull {
    pub tier: &'static str,
}

impl std::fmt::Display for TierFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tier {} is full", self.tier)
    }
}

impl std::error::Error for TierFull {}

impl Tier {
    pub fn new(cfg: TierConfig) -> Self {
        Tier {
            cfg,
            objects: Mutex::new(HashMap::new()),
            used: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
            busy_femtos: AtomicU64::new(0),
        }
    }

    pub fn name(&self) -> &'static str {
        self.cfg.name
    }

    pub fn config(&self) -> &TierConfig {
        &self.cfg
    }

    /// Store an object, accounting capacity and modeled write time.
    pub fn put(&self, id: ObjectId, bytes: Vec<u8>) -> Result<(), TierFull> {
        self.try_put(id, bytes).map_err(|_| TierFull {
            tier: self.cfg.name,
        })
    }

    /// Like [`put`](Self::put), but hands the payload back on a full tier so
    /// the caller can retry (backpressure path).
    pub fn try_put(&self, id: ObjectId, bytes: Vec<u8>) -> Result<(), Vec<u8>> {
        let len = bytes.len() as u64;
        // Reserve capacity optimistically; roll back on overflow.
        let prev = self.used.fetch_add(len, Ordering::Relaxed);
        if prev + len > self.cfg.capacity {
            self.used.fetch_sub(len, Ordering::Relaxed);
            return Err(bytes);
        }
        self.bytes_written.fetch_add(len, Ordering::Relaxed);
        let femtos = (len as f64 / self.cfg.bandwidth_bps * 1e15) as u64;
        self.busy_femtos.fetch_add(femtos, Ordering::Relaxed);
        let replaced = self.objects.lock().insert(id, bytes);
        if let Some(old) = replaced {
            self.used.fetch_sub(old.len() as u64, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Fetch a copy of an object.
    pub fn get(&self, id: ObjectId) -> Option<Vec<u8>> {
        self.objects.lock().get(&id).cloned()
    }

    pub fn contains(&self, id: ObjectId) -> bool {
        self.objects.lock().contains_key(&id)
    }

    /// Drop an object (eviction after draining to a lower tier).
    pub fn evict(&self, id: ObjectId) -> bool {
        match self.objects.lock().remove(&id) {
            Some(bytes) => {
                self.used.fetch_sub(bytes.len() as u64, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    /// All object ids currently resident (sorted, for deterministic tests).
    pub fn resident(&self) -> Vec<ObjectId> {
        let mut ids: Vec<ObjectId> = self.objects.lock().keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Bytes currently resident.
    pub fn used_bytes(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    /// Lifetime bytes written (not reduced by eviction).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }

    /// Modeled cumulative write time in seconds.
    pub fn modeled_busy_sec(&self) -> f64 {
        self.busy_femtos.load(Ordering::Relaxed) as f64 / 1e15
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_evict() {
        let t = Tier::new(TierConfig::host());
        t.put((0, 0), vec![1, 2, 3]).unwrap();
        assert_eq!(t.get((0, 0)), Some(vec![1, 2, 3]));
        assert_eq!(t.used_bytes(), 3);
        assert!(t.evict((0, 0)));
        assert_eq!(t.used_bytes(), 0);
        assert!(!t.evict((0, 0)));
        assert_eq!(t.get((0, 0)), None);
    }

    #[test]
    fn capacity_enforced() {
        let t = Tier::new(TierConfig {
            name: "tiny",
            bandwidth_bps: 1e9,
            capacity: 10,
        });
        t.put((0, 0), vec![0; 8]).unwrap();
        assert_eq!(t.put((0, 1), vec![0; 8]), Err(TierFull { tier: "tiny" }));
        // The failed write must not leak accounting.
        assert_eq!(t.used_bytes(), 8);
        t.evict((0, 0));
        t.put((0, 1), vec![0; 10]).unwrap();
    }

    #[test]
    fn overwrite_replaces_accounting() {
        let t = Tier::new(TierConfig::host());
        t.put((1, 1), vec![0; 100]).unwrap();
        t.put((1, 1), vec![0; 40]).unwrap();
        assert_eq!(t.used_bytes(), 40);
        assert_eq!(t.bytes_written(), 140);
    }

    #[test]
    fn modeled_time_tracks_bandwidth() {
        let t = Tier::new(TierConfig {
            name: "x",
            bandwidth_bps: 1e9,
            capacity: u64::MAX,
        });
        t.put((0, 0), vec![0; 1_000_000]).unwrap();
        assert!((t.modeled_busy_sec() - 1e-3).abs() < 1e-9);
    }

    #[test]
    fn resident_listing_sorted() {
        let t = Tier::new(TierConfig::host());
        t.put((1, 0), vec![0]).unwrap();
        t.put((0, 2), vec![0]).unwrap();
        t.put((0, 1), vec![0]).unwrap();
        assert_eq!(t.resident(), vec![(0, 1), (0, 2), (1, 0)]);
    }
}
