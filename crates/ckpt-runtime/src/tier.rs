//! Simulated storage tiers.
//!
//! The paper's architecture (Fig. 3) drains checkpoints down a hierarchy:
//! GPU memory → host memory → node-local SSD → parallel file system. Each
//! tier here is an in-memory object store with a bandwidth model: writes
//! accumulate *modeled* busy time (`bytes / bandwidth`, shared by every
//! writer, which is exactly the contention the paper describes for the
//! PFS), plus capacity accounting so experiments can observe tiers filling
//! up.
//!
//! # Integrity framing
//!
//! Every stored object is wrapped in a self-describing
//! [`ckpt_dedup::frame`] (magic, rank/ckpt ids, codec, payload length,
//! 64-bit checksum) at [`put`](Tier::put) time and verified at read time.
//! [`get`](Tier::get) returns only payloads whose frame verifies;
//! [`inspect`](Tier::inspect) additionally distinguishes missing from
//! corrupt objects so chain-level code can quarantine and repair. Capacity,
//! bandwidth and byte accounting remain *payload-based* (the 32-byte header
//! is bookkeeping, not modeled I/O).
//!
//! # Compressed objects
//!
//! The flusher may hand a tier an already-compressed payload via
//! [`store_object`](Tier::store_object); the frame then records the codec
//! and the original length, the checksum covers the *compressed* bytes,
//! and capacity / bandwidth / modeled-time accounting all use the
//! post-compression size (that is what actually moves and sits on the
//! device). Reads stay transparent: [`get`](Tier::get)/[`inspect`](Tier::inspect)
//! decompress after verification, while
//! [`inspect_object`](Tier::inspect_object) exposes the encoded form so
//! the drain loop can move an object down a tier without transcoding it.
//!
//! # Torn-write contract
//!
//! `put`/`try_put`/`store` are **atomic**: the object map is updated under
//! a lock only after the frame is fully materialized, so a concurrent
//! reader (or a crash via [`AsyncRuntime::kill`](crate::AsyncRuntime::kill))
//! observes either the complete framed object or nothing — never a
//! half-applied write. The *only* source of partial frames is an injected
//! [`FaultKind::TornWrite`](crate::fault::FaultKind::TornWrite), which
//! atomically installs a prefix of the framed bytes to model a write racing
//! a crash; frame verification detects it at the next read.

use crate::compress::CompressMetrics;
use crate::fault::{apply_latency, FaultKind, FaultPlan, OpKind};
use ckpt_dedup::frame;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Identifies one checkpoint object: `(rank, ckpt_id)`.
pub type ObjectId = (u32, u32);

/// Static tier parameters.
#[derive(Debug, Clone, Copy)]
pub struct TierConfig {
    pub name: &'static str,
    /// Aggregate write bandwidth in bytes/second, shared by all writers.
    pub bandwidth_bps: f64,
    /// Capacity in bytes (writes beyond it fail).
    pub capacity: u64,
}

impl TierConfig {
    /// Host DRAM staging: PCIe-fed, effectively one device link per rank.
    pub fn host() -> Self {
        TierConfig {
            name: "host",
            bandwidth_bps: 25.0e9,
            capacity: 512 << 30,
        }
    }

    /// Node-local NVMe SSD (Polaris: two 1.6 TB drives).
    pub fn ssd() -> Self {
        TierConfig {
            name: "ssd",
            bandwidth_bps: 2.0e9,
            capacity: 3200 << 30,
        }
    }

    /// Lustre parallel file system (ThetaGPU: 250 GB/s aggregate).
    pub fn pfs() -> Self {
        TierConfig {
            name: "pfs",
            bandwidth_bps: 250.0e9,
            capacity: u64::MAX,
        }
    }

    /// Redundancy-group store: partner copies / parity stripes living on
    /// peer nodes' local SSDs, reached over the interconnect — SSD-class
    /// bandwidth, shared capacity.
    pub fn group() -> Self {
        TierConfig {
            name: "group",
            bandwidth_bps: 2.0e9,
            capacity: 3200 << 30,
        }
    }
}

/// One simulated storage tier.
pub struct Tier {
    cfg: TierConfig,
    /// Framed objects (header + payload).
    objects: Mutex<HashMap<ObjectId, Vec<u8>>>,
    /// Corrupt frames pulled out of circulation, kept for forensics.
    quarantined: Mutex<HashMap<ObjectId, Vec<u8>>>,
    used: AtomicU64,
    bytes_written: AtomicU64,
    /// Modeled cumulative busy time in femtoseconds.
    busy_femtos: AtomicU64,
    /// Optional fault-injection hook (see [`crate::fault`]).
    faults: Option<Arc<FaultPlan>>,
    /// Bound once by the runtime so transparent reads can account decode
    /// time; never set in metric-less contexts.
    compress_metrics: OnceLock<Arc<CompressMetrics>>,
    /// Bound once by the tier chain: ranks named by a fired
    /// [`FaultKind::RankLoss`] are pushed here and wiped at the chain's
    /// next deterministic poll point.
    loss_sink: OnceLock<Arc<Mutex<Vec<u32>>>>,
}

/// An object in its *stored* form: the codec it was encoded with, the
/// original payload length, and the bytes as they sit on the device
/// (compressed when `codec != 0`). This is the currency of the flush path:
/// the SSD→PFS hop moves a `StoredObject` verbatim, never transcoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredObject {
    /// `ckpt_compress` codec id; 0 means the payload is stored verbatim.
    pub codec: u8,
    /// Length of the original (decoded) payload in bytes.
    pub uncompressed_len: u64,
    /// The stored bytes (a [`ckpt_compress::blocks`] container when
    /// `codec != 0`, the payload itself otherwise).
    pub payload: Vec<u8>,
}

impl StoredObject {
    /// An uncompressed object (the legacy `store` path).
    pub fn raw(payload: Vec<u8>) -> Self {
        StoredObject {
            codec: 0,
            uncompressed_len: payload.len() as u64,
            payload,
        }
    }

    /// An already-compressed object.
    pub fn encoded(codec: u8, uncompressed_len: u64, payload: Vec<u8>) -> Self {
        debug_assert!(codec != 0, "use StoredObject::raw for codec 0");
        StoredObject {
            codec,
            uncompressed_len,
            payload,
        }
    }

    pub fn is_compressed(&self) -> bool {
        self.codec != 0
    }

    /// Bytes this object occupies on a device: the stored payload plus the
    /// frame extension field that travels with compressed objects. This is
    /// what capacity, bandwidth and modeled-time accounting charge.
    pub fn stored_len(&self) -> u64 {
        let ext = if self.codec != 0 {
            frame::FRAME_EXT_LEN as u64
        } else {
            0
        };
        self.payload.len() as u64 + ext
    }

    /// Recover the original payload (decompressing through the recorded
    /// codec when one is set).
    pub fn decode(self) -> Result<Vec<u8>, frame::FrameError> {
        if self.codec == 0 {
            Ok(self.payload)
        } else {
            frame::decompress_payload(self.codec, self.uncompressed_len, &self.payload)
        }
    }

    fn frame(&self, id: ObjectId) -> Vec<u8> {
        if self.codec == 0 {
            frame::encode_frame(id.0, id.1, &self.payload)
        } else {
            frame::encode_frame_compressed(
                id.0,
                id.1,
                self.codec,
                self.uncompressed_len,
                &self.payload,
            )
        }
    }
}

/// Error for writes that exceed tier capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierFull {
    pub tier: &'static str,
}

impl std::fmt::Display for TierFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tier {} is full", self.tier)
    }
}

impl std::error::Error for TierFull {}

/// Why a [`Tier::store`] failed. The object is handed back so the caller
/// can retry without copying (and, for compressed objects, without
/// re-encoding).
#[derive(Debug)]
pub struct StoreError {
    pub kind: StoreErrorKind,
    pub object: StoredObject,
}

impl StoreError {
    /// The stored payload bytes, for raw-path callers.
    pub fn into_payload(self) -> Vec<u8> {
        self.object.payload
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreErrorKind {
    /// The tier is out of capacity (retry is pointless until eviction).
    Full,
    /// An injected transient I/O error (retry is expected to succeed).
    TransientIo,
}

/// The verified state of one object slot, as seen by [`Tier::inspect`].
#[derive(Debug, PartialEq, Eq)]
pub enum FrameState {
    /// No object stored under this id.
    Missing,
    /// Frame verified; the decoded payload.
    Valid(Vec<u8>),
    /// An object is stored but its frame fails verification.
    Corrupt(frame::FrameError),
    /// An injected transient read error; retry is expected to succeed.
    TransientIo,
}

impl FrameState {
    pub fn into_payload(self) -> Option<Vec<u8>> {
        match self {
            FrameState::Valid(p) => Some(p),
            _ => None,
        }
    }
}

/// The verified state of one object slot in its *encoded* form, as seen by
/// [`Tier::inspect_object`]. Same outcomes as [`FrameState`] but without
/// decompressing, so the drain loop can move compressed objects verbatim.
#[derive(Debug, PartialEq, Eq)]
pub enum ObjectState {
    /// No object stored under this id.
    Missing,
    /// Frame verified; the stored (possibly compressed) object.
    Valid(StoredObject),
    /// An object is stored but its frame fails verification.
    Corrupt(frame::FrameError),
    /// An injected transient read error; retry is expected to succeed.
    TransientIo,
}

impl ObjectState {
    pub fn into_object(self) -> Option<StoredObject> {
        match self {
            ObjectState::Valid(o) => Some(o),
            _ => None,
        }
    }
}

impl Tier {
    pub fn new(cfg: TierConfig) -> Self {
        Self::with_fault_hook(cfg, None)
    }

    /// A tier whose operations consult `plan` (keyed by this tier's name)
    /// before executing — the fault-injection hook.
    pub fn with_faults(cfg: TierConfig, plan: Arc<FaultPlan>) -> Self {
        Self::with_fault_hook(cfg, Some(plan))
    }

    fn with_fault_hook(cfg: TierConfig, faults: Option<Arc<FaultPlan>>) -> Self {
        Tier {
            cfg,
            objects: Mutex::new(HashMap::new()),
            quarantined: Mutex::new(HashMap::new()),
            used: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
            busy_femtos: AtomicU64::new(0),
            faults,
            compress_metrics: OnceLock::new(),
            loss_sink: OnceLock::new(),
        }
    }

    /// Bind the rank-loss sink shared by a tier chain. First binding wins.
    pub fn bind_loss_sink(&self, sink: Arc<Mutex<Vec<u32>>>) {
        let _ = self.loss_sink.set(sink);
    }

    /// Record a fired [`FaultKind::RankLoss`] for the chain to apply.
    fn note_rank_loss(&self, fault: &Option<FaultKind>) {
        if let Some(FaultKind::RankLoss { rank }) = fault {
            if let Some(sink) = self.loss_sink.get() {
                sink.lock().push(*rank);
            }
        }
    }

    /// Bind the compression metric sink so transparent reads account their
    /// decode time. First binding wins; later calls are ignored.
    pub fn bind_compress_metrics(&self, metrics: Arc<CompressMetrics>) {
        let _ = self.compress_metrics.set(metrics);
    }

    pub fn name(&self) -> &'static str {
        self.cfg.name
    }

    pub fn config(&self) -> &TierConfig {
        &self.cfg
    }

    /// The charge an object's stored bytes incur against capacity/byte
    /// accounting: the payload portion only (zero for a sub-header torn
    /// stub).
    fn charged_bytes(stored: &[u8]) -> u64 {
        stored.len().saturating_sub(frame::FRAME_HEADER_LEN) as u64
    }

    /// Store an object, accounting capacity and modeled write time.
    pub fn put(&self, id: ObjectId, bytes: Vec<u8>) -> Result<(), TierFull> {
        self.store(id, bytes).map_err(|_| TierFull {
            tier: self.cfg.name,
        })
    }

    /// Like [`put`](Self::put), but hands the payload back on failure so
    /// the caller can retry (backpressure path).
    pub fn try_put(&self, id: ObjectId, bytes: Vec<u8>) -> Result<(), Vec<u8>> {
        self.store(id, bytes).map_err(|e| e.into_payload())
    }

    /// Store `payload` under `id`, framed and uncompressed, reporting *why*
    /// on failure so the drain loop can distinguish a full tier (degrade)
    /// from a transient I/O error (retry with backoff).
    pub fn store(&self, id: ObjectId, payload: Vec<u8>) -> Result<(), StoreError> {
        self.store_object(id, StoredObject::raw(payload))
    }

    /// Store an object in its encoded form. Capacity, bandwidth, byte and
    /// modeled-time accounting all charge [`StoredObject::stored_len`] —
    /// the compressed size when a codec is set, because that is what moves
    /// over the link and sits on the device.
    pub fn store_object(&self, id: ObjectId, object: StoredObject) -> Result<(), StoreError> {
        // Fault hook: consult the plan before any side effect so a
        // transient error leaves no trace in the accounting.
        let fault = self
            .faults
            .as_ref()
            .and_then(|p| p.next_op(self.cfg.name, OpKind::Put));
        self.note_rank_loss(&fault);
        if let Some(kind) = &fault {
            apply_latency(kind);
            if *kind == FaultKind::TransientIo {
                return Err(StoreError {
                    kind: StoreErrorKind::TransientIo,
                    object,
                });
            }
        }

        let len = object.stored_len();
        // Reserve capacity optimistically; roll back on overflow.
        let prev = self.used.fetch_add(len, Ordering::Relaxed);
        if prev + len > self.cfg.capacity {
            self.used.fetch_sub(len, Ordering::Relaxed);
            return Err(StoreError {
                kind: StoreErrorKind::Full,
                object,
            });
        }

        let mut framed = object.frame(id);
        // Storage faults mutate the framed bytes *before* the atomic
        // insert: readers see the complete (corrupt) object, never a
        // half-applied write.
        match fault {
            Some(FaultKind::TornWrite { keep_bytes }) => {
                framed.truncate((keep_bytes as usize).min(framed.len().saturating_sub(1)));
            }
            Some(FaultKind::BitFlip { bit }) => {
                let nbits = (framed.len() * 8) as u64;
                if nbits > 0 {
                    let at = (bit % nbits) as usize;
                    framed[at / 8] ^= 1 << (at % 8);
                }
            }
            _ => {}
        }

        // Re-charge to what actually landed (a torn write stores less than
        // was reserved).
        let charged = Self::charged_bytes(&framed);
        if charged < len {
            self.used.fetch_sub(len - charged, Ordering::Relaxed);
        }
        self.bytes_written.fetch_add(charged, Ordering::Relaxed);
        let femtos = (charged as f64 / self.cfg.bandwidth_bps * 1e15) as u64;
        self.busy_femtos.fetch_add(femtos, Ordering::Relaxed);
        let replaced = self.objects.lock().insert(id, framed);
        if let Some(old) = replaced {
            self.used
                .fetch_sub(Self::charged_bytes(&old), Ordering::Relaxed);
        }
        Ok(())
    }

    /// Fetch a verified copy of an object's payload, transparently
    /// decompressed. Corrupt, missing and transiently-unreadable objects
    /// all read as `None`; use [`inspect`](Self::inspect) to tell them
    /// apart.
    pub fn get(&self, id: ObjectId) -> Option<Vec<u8>> {
        self.inspect(id).into_payload()
    }

    /// Read and verify an object's frame, distinguishing every outcome and
    /// decoding the payload back to its original bytes (a payload that
    /// verifies but fails to decompress reads as `Corrupt`).
    pub fn inspect(&self, id: ObjectId) -> FrameState {
        match self.inspect_object(id) {
            ObjectState::Missing => FrameState::Missing,
            ObjectState::TransientIo => FrameState::TransientIo,
            ObjectState::Corrupt(e) => FrameState::Corrupt(e),
            ObjectState::Valid(obj) => {
                let timed = obj.is_compressed().then(Instant::now);
                match obj.decode() {
                    Ok(payload) => {
                        if let (Some(t0), Some(m)) = (timed, self.compress_metrics.get()) {
                            m.on_decode(t0.elapsed().as_nanos() as u64);
                        }
                        FrameState::Valid(payload)
                    }
                    Err(e) => FrameState::Corrupt(e),
                }
            }
        }
    }

    /// Read and verify an object's frame *without* decompressing: the
    /// checksum (over the stored bytes) and ids are checked, but the
    /// payload is returned in its encoded form so it can be re-stored on
    /// another tier verbatim.
    pub fn inspect_object(&self, id: ObjectId) -> ObjectState {
        let fault = self
            .faults
            .as_ref()
            .and_then(|p| p.next_op(self.cfg.name, OpKind::Get));
        self.note_rank_loss(&fault);
        if let Some(kind) = &fault {
            apply_latency(kind);
            if *kind == FaultKind::TransientIo {
                return ObjectState::TransientIo;
            }
        }
        let framed = match self.objects.lock().get(&id) {
            Some(bytes) => bytes.clone(),
            None => return ObjectState::Missing,
        };
        match frame::decode_frame_expecting(&framed, Some(id)) {
            Ok((header, stored)) => ObjectState::Valid(StoredObject {
                codec: header.codec,
                uncompressed_len: header.uncompressed_len,
                payload: stored.to_vec(),
            }),
            Err(e) => ObjectState::Corrupt(e),
        }
    }

    /// The raw framed bytes, unverified and fault-free (diagnostics only).
    pub fn raw(&self, id: ObjectId) -> Option<Vec<u8>> {
        self.objects.lock().get(&id).cloned()
    }

    pub fn contains(&self, id: ObjectId) -> bool {
        self.objects.lock().contains_key(&id)
    }

    /// Drop an object (eviction after draining to a lower tier).
    pub fn evict(&self, id: ObjectId) -> bool {
        match self.objects.lock().remove(&id) {
            Some(bytes) => {
                self.used
                    .fetch_sub(Self::charged_bytes(&bytes), Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    /// Pull a corrupt object out of circulation: it stops counting against
    /// capacity and no longer resolves via `get`/`contains`, but its bytes
    /// are retained for forensics. Returns whether an object was present.
    pub fn quarantine(&self, id: ObjectId) -> bool {
        match self.objects.lock().remove(&id) {
            Some(bytes) => {
                self.used
                    .fetch_sub(Self::charged_bytes(&bytes), Ordering::Relaxed);
                self.quarantined.lock().insert(id, bytes);
                true
            }
            None => false,
        }
    }

    /// Wipe every object of `rank` — resident and quarantined — rolling
    /// back capacity accounting. This models whole-node loss; it is applied
    /// by the tier chain when a [`FaultKind::RankLoss`] fault is polled.
    /// Returns the wiped ids (sorted, deduplicated).
    pub fn wipe_rank(&self, rank: u32) -> Vec<ObjectId> {
        let mut wiped = Vec::new();
        {
            let mut objects = self.objects.lock();
            let ids: Vec<ObjectId> = objects.keys().filter(|id| id.0 == rank).copied().collect();
            for id in ids {
                if let Some(bytes) = objects.remove(&id) {
                    self.used
                        .fetch_sub(Self::charged_bytes(&bytes), Ordering::Relaxed);
                    wiped.push(id);
                }
            }
        }
        {
            let mut q = self.quarantined.lock();
            let ids: Vec<ObjectId> = q.keys().filter(|id| id.0 == rank).copied().collect();
            for id in ids {
                q.remove(&id);
                wiped.push(id);
            }
        }
        wiped.sort_unstable();
        wiped.dedup();
        wiped
    }

    /// Ids currently quarantined (sorted, for deterministic tests).
    pub fn quarantined(&self) -> Vec<ObjectId> {
        let mut ids: Vec<ObjectId> = self.quarantined.lock().keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// All object ids currently resident (sorted, for deterministic tests).
    pub fn resident(&self) -> Vec<ObjectId> {
        let mut ids: Vec<ObjectId> = self.objects.lock().keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Bytes currently resident.
    pub fn used_bytes(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    /// Lifetime bytes written (not reduced by eviction).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }

    /// Modeled cumulative write time in seconds.
    pub fn modeled_busy_sec(&self) -> f64 {
        self.busy_femtos.load(Ordering::Relaxed) as f64 / 1e15
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlanBuilder;

    #[test]
    fn put_get_evict() {
        let t = Tier::new(TierConfig::host());
        t.put((0, 0), vec![1, 2, 3]).unwrap();
        assert_eq!(t.get((0, 0)), Some(vec![1, 2, 3]));
        assert_eq!(t.used_bytes(), 3);
        assert!(t.evict((0, 0)));
        assert_eq!(t.used_bytes(), 0);
        assert!(!t.evict((0, 0)));
        assert_eq!(t.get((0, 0)), None);
    }

    #[test]
    fn capacity_enforced() {
        let t = Tier::new(TierConfig {
            name: "tiny",
            bandwidth_bps: 1e9,
            capacity: 10,
        });
        t.put((0, 0), vec![0; 8]).unwrap();
        assert_eq!(t.put((0, 1), vec![0; 8]), Err(TierFull { tier: "tiny" }));
        // The failed write must not leak accounting.
        assert_eq!(t.used_bytes(), 8);
        t.evict((0, 0));
        t.put((0, 1), vec![0; 10]).unwrap();
    }

    #[test]
    fn overwrite_replaces_accounting() {
        let t = Tier::new(TierConfig::host());
        t.put((1, 1), vec![0; 100]).unwrap();
        t.put((1, 1), vec![0; 40]).unwrap();
        assert_eq!(t.used_bytes(), 40);
        assert_eq!(t.bytes_written(), 140);
    }

    #[test]
    fn modeled_time_tracks_bandwidth() {
        let t = Tier::new(TierConfig {
            name: "x",
            bandwidth_bps: 1e9,
            capacity: u64::MAX,
        });
        t.put((0, 0), vec![0; 1_000_000]).unwrap();
        assert!((t.modeled_busy_sec() - 1e-3).abs() < 1e-9);
    }

    #[test]
    fn resident_listing_sorted() {
        let t = Tier::new(TierConfig::host());
        t.put((1, 0), vec![0]).unwrap();
        t.put((0, 2), vec![0]).unwrap();
        t.put((0, 1), vec![0]).unwrap();
        assert_eq!(t.resident(), vec![(0, 1), (0, 2), (1, 0)]);
    }

    #[test]
    fn stored_objects_are_framed_and_verified() {
        let t = Tier::new(TierConfig::host());
        t.put((3, 9), vec![5; 64]).unwrap();
        let raw = t.raw((3, 9)).unwrap();
        assert_eq!(raw.len(), 64 + ckpt_dedup::frame::FRAME_HEADER_LEN);
        assert!(ckpt_dedup::frame::looks_framed(&raw));
        // get strips and verifies the frame.
        assert_eq!(t.get((3, 9)), Some(vec![5; 64]));
        assert_eq!(t.inspect((3, 9)), FrameState::Valid(vec![5; 64]));
        assert_eq!(t.inspect((3, 8)), FrameState::Missing);
    }

    #[test]
    fn torn_write_is_detected_and_quarantinable() {
        let plan = FaultPlanBuilder::new()
            .on_put("host", 0, FaultKind::TornWrite { keep_bytes: 10 })
            .build();
        let t = Tier::with_faults(TierConfig::host(), Arc::clone(&plan));
        t.put((0, 0), vec![7; 100]).unwrap();
        assert!(t.contains((0, 0)));
        assert_eq!(t.get((0, 0)), None);
        assert!(matches!(t.inspect((0, 0)), FrameState::Corrupt(_)));
        // Sub-header stub charges nothing.
        assert_eq!(t.used_bytes(), 0);
        assert!(t.quarantine((0, 0)));
        assert!(!t.contains((0, 0)));
        assert_eq!(t.quarantined(), vec![(0, 0)]);
        assert_eq!(plan.fired().len(), 1);
        // The next put is clean.
        t.put((0, 1), vec![7; 100]).unwrap();
        assert_eq!(t.get((0, 1)), Some(vec![7; 100]));
    }

    #[test]
    fn bit_flip_is_detected() {
        let plan = FaultPlanBuilder::new()
            .on_put("host", 0, FaultKind::BitFlip { bit: 999 })
            .build();
        let t = Tier::with_faults(TierConfig::host(), plan);
        t.put((0, 0), vec![1; 50]).unwrap();
        assert!(matches!(t.inspect((0, 0)), FrameState::Corrupt(_)));
        // Accounting still sees the full payload (the flip corrupts, it
        // does not shrink).
        assert_eq!(t.used_bytes(), 50);
    }

    #[test]
    fn transient_io_errors_fire_once_and_leave_no_trace() {
        let plan = FaultPlanBuilder::new()
            .on_put("host", 0, FaultKind::TransientIo)
            .on_get("host", 1, FaultKind::TransientIo)
            .build();
        let t = Tier::with_faults(TierConfig::host(), plan);
        let err = t.store((0, 0), vec![9; 30]).unwrap_err();
        assert_eq!(err.kind, StoreErrorKind::TransientIo);
        assert_eq!(err.object.payload, vec![9; 30]);
        assert_eq!(t.used_bytes(), 0);
        assert_eq!(t.bytes_written(), 0);
        // Retry (op 1) succeeds; the handed-back object is reusable as-is.
        t.store_object((0, 0), err.object).unwrap();
        // Get op 0 fine, op 1 faulted, op 2 fine.
        assert_eq!(t.get((0, 0)), Some(vec![9; 30]));
        assert_eq!(t.inspect((0, 0)), FrameState::TransientIo);
        assert_eq!(t.get((0, 0)), Some(vec![9; 30]));
    }

    #[test]
    fn misplaced_frame_fails_verification() {
        // Two tiers; copy raw framed bytes of (0,0) into slot (0,1).
        let t = Tier::new(TierConfig::host());
        t.put((0, 0), vec![4; 16]).unwrap();
        let raw = t.raw((0, 0)).unwrap();
        t.objects.lock().insert((0, 1), raw);
        assert!(matches!(t.inspect((0, 1)), FrameState::Corrupt(_)));
    }

    fn zstd_object(payload: &[u8]) -> StoredObject {
        let codec = ckpt_compress::codec_by_id(6).unwrap();
        let container = ckpt_compress::blocks::compress_blocks(
            &*codec,
            payload,
            ckpt_compress::blocks::DEFAULT_BLOCK_SIZE,
        );
        StoredObject::encoded(6, payload.len() as u64, container)
    }

    #[test]
    fn compressed_objects_round_trip_transparently() {
        let t = Tier::new(TierConfig::host());
        let payload: Vec<u8> = (0..100_000u32)
            .flat_map(|i| (i % 37).to_le_bytes())
            .collect();
        let obj = zstd_object(&payload);
        let stored_len = obj.stored_len();
        assert!(stored_len < payload.len() as u64 / 2);
        t.store_object((2, 7), obj.clone()).unwrap();

        // Reads decode transparently…
        assert_eq!(t.get((2, 7)), Some(payload.clone()));
        assert_eq!(t.inspect((2, 7)), FrameState::Valid(payload));
        // …while inspect_object exposes the encoded form verbatim.
        assert_eq!(t.inspect_object((2, 7)), ObjectState::Valid(obj));

        // Accounting charges the compressed size, not the original.
        assert_eq!(t.used_bytes(), stored_len);
        assert_eq!(t.bytes_written(), stored_len);
    }

    #[test]
    fn capacity_is_enforced_on_compressed_size() {
        let payload: Vec<u8> = vec![3; 64 * 1024];
        let obj = zstd_object(&payload);
        let t = Tier::new(TierConfig {
            name: "tiny",
            bandwidth_bps: 1e9,
            // Too small for the raw payload, roomy for the compressed one.
            capacity: payload.len() as u64 / 4,
        });
        assert!(obj.stored_len() <= t.config().capacity);
        t.store_object((0, 0), obj).unwrap();
        assert_eq!(
            t.store((0, 1), payload).unwrap_err().kind,
            StoreErrorKind::Full
        );
    }

    #[test]
    fn undecompressible_payload_reads_as_corrupt() {
        // A frame whose checksum verifies but whose payload is not a valid
        // block container: the frame layer cannot catch it, decode must.
        let t = Tier::new(TierConfig::host());
        let garbage = StoredObject::encoded(6, 4096, vec![0xAB; 64]);
        t.store_object((1, 1), garbage.clone()).unwrap();
        assert_eq!(t.inspect_object((1, 1)), ObjectState::Valid(garbage));
        assert!(matches!(
            t.inspect((1, 1)),
            FrameState::Corrupt(frame::FrameError::Decompress { codec: 6 })
        ));
        assert_eq!(t.get((1, 1)), None);
    }

    #[test]
    fn bit_flip_on_compressed_object_is_detected_without_decoding() {
        let plan = FaultPlanBuilder::new()
            .on_put("host", 0, FaultKind::BitFlip { bit: 401 })
            .build();
        let t = Tier::with_faults(TierConfig::host(), plan);
        let payload: Vec<u8> = (0..50_000u32).flat_map(|i| (i % 9).to_le_bytes()).collect();
        t.store_object((0, 0), zstd_object(&payload)).unwrap();
        assert!(matches!(t.inspect_object((0, 0)), ObjectState::Corrupt(_)));
        assert!(matches!(t.inspect((0, 0)), FrameState::Corrupt(_)));
    }
}
