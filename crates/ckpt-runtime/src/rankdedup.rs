//! Cluster-wide content-addressed dedup index across the ranks of a
//! redundancy group.
//!
//! Per-rank de-duplication (the paper's Fig. 7 weak-scaling setup) hashes
//! each GPU's state independently, so regions replicated *across* ranks —
//! ghost zones, replicated model/optimizer state — are stored once per
//! rank. This module closes that gap: the 128-bit chunk-hash space is
//! sharded across the ranks of the group (`owner_of`), each rank publishes
//! **first-occurrence claims** for the chunks it stores, and later
//! occurrences anywhere in the cluster are rewritten to
//! [`RemoteRef`]`{owner_rank, ckpt_id, chunk}` entries of a
//! [`RankDedupRecord`] — a chunk first seen by any rank is stored exactly
//! once cluster-wide.
//!
//! # Claim exchange
//!
//! Claims travel through a [`ClaimExchange`] stage in the
//! [`CheckpointPipeline`](crate::pipeline::CheckpointPipeline) shape: a
//! bounded hand-off to a dedicated worker, overlapped with the producer's
//! hashing of the next checkpoint. The stage is deterministic and
//! adversarially schedulable: a seeded reorder window commits claims out of
//! arrival order (so "who wins a race" is reproducible from the seed), and
//! the existing [`FaultPlan`] machinery injects latency (defer until the
//! next flush), drops, and rank loss against the virtual `"exchange"` tier.
//! A claim that loses its race — or is dropped by a fault or a crash — is
//! an **orphan**: the claimant keeps its local copy, the duplicate bytes
//! are simply not saved, and the `rankdedup/orphans` counter types the
//! event. Orphans never dangle: every committed claim points at bytes its
//! claimant stored locally *before* publishing.
//!
//! With no window and no fault plan the exchange is **inline**: claims
//! commit synchronously in the claimant, which makes stored-byte totals
//! bit-reproducible (the idealized interconnect the benchmarks measure
//! against).
//!
//! # Chunk-grid alignment
//!
//! Payload chunking starts at [`Diff::payload_offset`], with the diff
//! metadata prefix carried as a single variable-length local entry —
//! per-rank metadata differs in length, but the first-occurrence payload
//! bytes of replicated regions land on the same grid and dedup across
//! ranks.
//!
//! # GC floors
//!
//! A remotely-referenced object must outlive its referers:
//! [`RankDedupIndex::compact_below`] returns the set of ids *pinned* by
//! inbound references from live objects, and
//! [`coordinator::compact_below`](crate::coordinator::compact_below) keeps
//! those resident past the rank's rebase floor. Claims pointing into
//! evicted (unpinned) objects are retired so no future checkpoint can
//! acquire a dangling reference.
//!
//! # Resolution
//!
//! [`resolve_record`] reassembles the original payload, fetching
//! referenced records through a caller-supplied closure (the tier chain's
//! read path, including group-tier reconstruction — so a remote chunk on a
//! lost rank rebuilds from its parity group before restore proceeds). The
//! reassembly is verified against the original payload's checksum recorded
//! at encode time: a dangling or wrong reference is a typed
//! [`RankDedupError`], never a silently wrong payload. References are
//! depth-1 by construction (claims only ever name *local* entries), so
//! resolution never recurses.

use crate::fault::{FaultKind, FaultPlan, OpKind, SplitMix64};
use crate::tier::ObjectId;
use ckpt_dedup::diff::Diff;
use ckpt_dedup::frame::{self, RankDedupEntry, RankDedupRecord, RemoteRef};
use ckpt_hash::{Hasher128, Murmur3};
use ckpt_telemetry::{Counter, Registry};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Seed for the 128-bit content hashes the index is keyed by (distinct
/// from every integrity-checksum seed).
const CHUNK_HASH_SEED: u32 = 0x5244_4858;

/// `rankdedup/*` telemetry. Every metric registers lazily on first event,
/// so runs with rank-dedup off export exactly the pre-existing schema.
///
/// | metric | kind | meaning |
/// |---|---|---|
/// | `rankdedup/claims` | counter | first-occurrence claims committed to the index |
/// | `rankdedup/remote_refs` | counter | chunks rewritten to cross-rank references |
/// | `rankdedup/remote_bytes_saved` | counter | payload bytes not stored thanks to remote refs |
/// | `rankdedup/fetch_ns` | counter | nanoseconds spent resolving remote refs on reads |
/// | `rankdedup/orphans` | counter | claims that lost a race or were dropped/killed in the exchange |
pub struct RankDedupMetrics {
    registry: Option<Arc<Registry>>,
    claims: OnceLock<Arc<Counter>>,
    remote_refs: OnceLock<Arc<Counter>>,
    remote_bytes_saved: OnceLock<Arc<Counter>>,
    fetch_ns: OnceLock<Arc<Counter>>,
    orphans: OnceLock<Arc<Counter>>,
}

impl RankDedupMetrics {
    pub fn bound(registry: Arc<Registry>) -> Self {
        RankDedupMetrics {
            registry: Some(registry),
            ..Self::detached()
        }
    }

    /// A sink that counts nothing (indexes built without telemetry).
    pub fn detached() -> Self {
        RankDedupMetrics {
            registry: None,
            claims: OnceLock::new(),
            remote_refs: OnceLock::new(),
            remote_bytes_saved: OnceLock::new(),
            fetch_ns: OnceLock::new(),
            orphans: OnceLock::new(),
        }
    }

    fn lazy<'a>(
        &'a self,
        slot: &'a OnceLock<Arc<Counter>>,
        name: &'static str,
    ) -> Option<&'a Arc<Counter>> {
        self.registry
            .as_ref()
            .map(|r| slot.get_or_init(|| r.counter(name)))
    }

    pub fn on_claims(&self, n: u64) {
        if n > 0 {
            if let Some(c) = self.lazy(&self.claims, "rankdedup/claims") {
                c.add(n);
            }
        }
    }

    pub fn on_remote_refs(&self, n: u64, bytes_saved: u64) {
        if n > 0 {
            if let Some(c) = self.lazy(&self.remote_refs, "rankdedup/remote_refs") {
                c.add(n);
            }
            if let Some(c) = self.lazy(&self.remote_bytes_saved, "rankdedup/remote_bytes_saved") {
                c.add(bytes_saved);
            }
        }
    }

    pub fn on_fetch(&self, elapsed: Duration) {
        if let Some(c) = self.lazy(&self.fetch_ns, "rankdedup/fetch_ns") {
            c.add(elapsed.as_nanos().min(u64::MAX as u128) as u64);
        }
    }

    pub fn on_orphans(&self, n: u64) {
        if n > 0 {
            if let Some(c) = self.lazy(&self.orphans, "rankdedup/orphans") {
                c.add(n);
            }
        }
    }
}

/// A 128-bit content hash of one grid chunk.
pub type ChunkHash = (u64, u64);

/// Hash one grid chunk for the cluster index.
#[inline]
pub fn chunk_hash(chunk: &[u8]) -> ChunkHash {
    let d = Murmur3.hash_seeded(chunk, CHUNK_HASH_SEED);
    (d.h1, d.h2)
}

/// Which rank's shard of the hash space a chunk hash belongs to.
#[inline]
pub fn owner_of(hash: ChunkHash, ranks: u32) -> u32 {
    ((hash.0 ^ hash.1) % ranks.max(1) as u64) as u32
}

/// Where a committed first-occurrence claim's bytes live: local entry
/// `chunk` of the rank-dedup record stored as `(rank, ckpt_id)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClaimLoc {
    pub rank: u32,
    pub ckpt_id: u32,
    pub chunk: u32,
}

impl ClaimLoc {
    fn object(&self) -> ObjectId {
        (self.rank, self.ckpt_id)
    }

    fn reference(&self) -> RemoteRef {
        RemoteRef {
            owner_rank: self.rank,
            ckpt_id: self.ckpt_id,
            chunk: self.chunk,
        }
    }
}

/// Why rank-dedup configuration or resolution failed. Every resolution
/// variant maps to a typed loss at the recovery layer — never a wrong
/// payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankDedupError {
    /// The record (or a referenced record) failed structural verification.
    Decode(frame::FrameError),
    /// A referenced object is gone from every tier and its group.
    DanglingRef { reference: RemoteRef },
    /// A reference names an entry that is not local in its record (encoder
    /// bug or cross-version confusion; depth-1 resolution refuses it).
    NotLocal { reference: RemoteRef },
    /// The reassembled payload has the wrong length.
    LengthMismatch { expected: u64, got: u64 },
    /// The reassembled payload failed the original checksum recorded at
    /// encode time.
    ChecksumMismatch,
}

impl std::fmt::Display for RankDedupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RankDedupError::Decode(e) => write!(f, "rank-dedup record invalid: {e}"),
            RankDedupError::DanglingRef { reference } => write!(
                f,
                "dangling remote ref to rank {} ckpt {} chunk {}",
                reference.owner_rank, reference.ckpt_id, reference.chunk
            ),
            RankDedupError::NotLocal { reference } => write!(
                f,
                "remote ref to rank {} ckpt {} chunk {} is not a local entry there",
                reference.owner_rank, reference.ckpt_id, reference.chunk
            ),
            RankDedupError::LengthMismatch { expected, got } => {
                write!(f, "resolved payload length {got}, recorded {expected}")
            }
            RankDedupError::ChecksumMismatch => {
                write!(f, "resolved payload failed the recorded checksum")
            }
        }
    }
}

impl std::error::Error for RankDedupError {}

/// The shared cluster index: committed first-occurrence claims plus the
/// cross-rank reference edges that pin remotely-referenced objects past GC
/// floors.
pub struct RankDedupIndex {
    ranks: u32,
    claims: Mutex<HashMap<ChunkHash, ClaimLoc>>,
    /// referenced object -> referencing objects (self-references excluded).
    inbound: Mutex<HashMap<ObjectId, HashSet<ObjectId>>>,
    /// referencing object -> referenced objects (self-references excluded).
    outbound: Mutex<HashMap<ObjectId, HashSet<ObjectId>>>,
    metrics: RankDedupMetrics,
}

impl RankDedupIndex {
    pub fn new(ranks: u32, metrics: RankDedupMetrics) -> Self {
        RankDedupIndex {
            ranks: ranks.max(1),
            claims: Mutex::new(HashMap::new()),
            inbound: Mutex::new(HashMap::new()),
            outbound: Mutex::new(HashMap::new()),
            metrics,
        }
    }

    /// Ranks the hash space is sharded across.
    pub fn ranks(&self) -> u32 {
        self.ranks
    }

    pub fn metrics(&self) -> &RankDedupMetrics {
        &self.metrics
    }

    /// The shard owner of a chunk hash.
    pub fn owner_of(&self, hash: ChunkHash) -> u32 {
        owner_of(hash, self.ranks)
    }

    /// The committed first-occurrence location for a hash, if any.
    pub fn lookup(&self, hash: ChunkHash) -> Option<ClaimLoc> {
        self.claims.lock().get(&hash).copied()
    }

    /// Commit a first-occurrence claim. First writer wins; a losing claim
    /// is an orphan (typed, counted — its bytes stay stored locally by the
    /// claimant, they are simply not advertised).
    pub fn commit_claim(&self, hash: ChunkHash, loc: ClaimLoc) -> bool {
        match self.claims.lock().entry(hash) {
            Entry::Vacant(v) => {
                v.insert(loc);
                self.metrics.on_claims(1);
                true
            }
            Entry::Occupied(_) => {
                self.metrics.on_orphans(1);
                false
            }
        }
    }

    /// Record that object `from` carries remote references into `to`
    /// (pinning `to` past GC floors until `from` is itself compacted).
    pub fn add_ref(&self, from: ObjectId, to: ObjectId) {
        if from == to {
            return;
        }
        self.inbound.lock().entry(to).or_default().insert(from);
        self.outbound.lock().entry(from).or_default().insert(to);
    }

    /// Whether any live object still references `id` remotely.
    pub fn is_pinned(&self, id: ObjectId) -> bool {
        self.inbound.lock().get(&id).is_some_and(|s| !s.is_empty())
    }

    /// Total committed claims (test/stats helper).
    pub fn claim_count(&self) -> usize {
        self.claims.lock().len()
    }

    /// GC hook for `rank` advancing its rebase floor to `below`: releases
    /// the outbound reference edges of this rank's objects under the floor
    /// (they are about to be evicted), retires claims pointing into
    /// evicted objects, and returns the ids `(rank, c < below)` that must
    /// be **kept** because live objects elsewhere still reference them.
    ///
    /// Conservative by design: a pinned object stays resident until a
    /// *later* floor advance of its rank finds it unpinned.
    pub fn compact_below(&self, rank: u32, below: u32) -> HashSet<ObjectId> {
        let under = |id: &ObjectId| id.0 == rank && id.1 < below;
        // Release outbound edges of the objects being evicted.
        {
            let mut outbound = self.outbound.lock();
            let mut inbound = self.inbound.lock();
            let evicted: Vec<ObjectId> = outbound.keys().copied().filter(under).collect();
            for from in evicted {
                if let Some(tos) = outbound.remove(&from) {
                    for to in tos {
                        if let Some(set) = inbound.get_mut(&to) {
                            set.remove(&from);
                            if set.is_empty() {
                                inbound.remove(&to);
                            }
                        }
                    }
                }
            }
        }
        // Everything under the floor still referenced from outside stays.
        let keep: HashSet<ObjectId> = self
            .inbound
            .lock()
            .iter()
            .filter(|(id, refs)| under(id) && !refs.is_empty())
            .map(|(id, _)| *id)
            .collect();
        // Claims into objects about to be evicted would hand out dangling
        // references; retire them.
        self.claims
            .lock()
            .retain(|_, loc| !under(&loc.object()) || keep.contains(&loc.object()));
        keep
    }
}

/// One rank's published claims for one checkpoint object.
pub struct ClaimBatch {
    pub claimant: ObjectId,
    pub claims: Vec<(ChunkHash, ClaimLoc)>,
}

enum Msg {
    Batch(ClaimBatch),
    Flush,
}

struct ExchangeShared {
    published: AtomicU64,
    /// Batches committed *or* dropped — quiesce waits for this to catch
    /// `published`.
    settled: AtomicU64,
    signal: (Mutex<()>, Condvar),
}

impl ExchangeShared {
    fn settle(&self) {
        self.settled.fetch_add(1, Ordering::Release);
        let _g = self.signal.0.lock();
        self.signal.1.notify_all();
    }
}

/// The asynchronous claim-publication stage (see the module docs). Inline
/// when built with no reorder window and no fault plan.
pub struct ClaimExchange {
    index: Arc<RankDedupIndex>,
    tx: Mutex<Option<Sender<Msg>>>,
    worker: Mutex<Option<JoinHandle<()>>>,
    shared: Arc<ExchangeShared>,
    killed: Arc<AtomicBool>,
    inline: bool,
}

impl ClaimExchange {
    /// An inline exchange: claims commit synchronously in the claimant.
    pub fn inline(index: Arc<RankDedupIndex>) -> Self {
        Self::build(index, 0, 0, None, true)
    }

    /// An asynchronous exchange with a seeded reorder window of `window`
    /// batches and optional fault injection against the `"exchange"` tier
    /// (`LatencySpike` defers a batch to the next flush/quiesce;
    /// `TransientIo`/`TornWrite`/`BitFlip` drop it; `RankLoss{rank}` drops
    /// it when the claimant is that rank).
    pub fn with_schedule(
        index: Arc<RankDedupIndex>,
        seed: u64,
        window: usize,
        plan: Option<Arc<FaultPlan>>,
    ) -> Self {
        Self::build(index, seed, window, plan, false)
    }

    fn build(
        index: Arc<RankDedupIndex>,
        seed: u64,
        window: usize,
        plan: Option<Arc<FaultPlan>>,
        inline: bool,
    ) -> Self {
        let shared = Arc::new(ExchangeShared {
            published: AtomicU64::new(0),
            settled: AtomicU64::new(0),
            signal: (Mutex::new(()), Condvar::new()),
        });
        let killed = Arc::new(AtomicBool::new(false));
        let (tx, worker) = if inline {
            (None, None)
        } else {
            let (tx, rx): (Sender<Msg>, Receiver<Msg>) = unbounded();
            let w = {
                let index = Arc::clone(&index);
                let shared = Arc::clone(&shared);
                let killed = Arc::clone(&killed);
                std::thread::spawn(move || {
                    exchange_loop(rx, index, shared, killed, seed, window, plan)
                })
            };
            (Some(tx), Some(w))
        };
        ClaimExchange {
            index,
            tx: Mutex::new(tx),
            worker: Mutex::new(worker),
            shared,
            killed,
            inline,
        }
    }

    /// Whether claims commit synchronously in [`publish`](Self::publish).
    pub fn is_inline(&self) -> bool {
        self.inline
    }

    /// Hand one checkpoint's claims to the exchange. Inline mode commits
    /// before returning; otherwise the batch is queued for the worker and
    /// this returns immediately (the PR 4 pipeline hand-off shape). After
    /// a [`kill`](Self::kill) the claims are dropped and counted as
    /// orphans.
    pub fn publish(&self, batch: ClaimBatch) {
        if batch.claims.is_empty() {
            return;
        }
        self.shared.published.fetch_add(1, Ordering::Release);
        if self.inline {
            commit_batch(&self.index, batch);
            self.shared.settle();
            return;
        }
        let sent = {
            let tx = self.tx.lock();
            match tx.as_ref() {
                Some(tx) => tx.send(Msg::Batch(batch)).is_ok(),
                None => false,
            }
        };
        if !sent {
            // Exchange gone (killed): the claims die with it — typed, not
            // silently re-queued. Recompute nothing; the claimant's local
            // copies remain authoritative.
            self.index.metrics().on_orphans(1);
            self.shared.settle();
        }
    }

    /// Block until every published batch has settled (committed or
    /// dropped), flushing deferred batches first. Between checkpoint
    /// rounds this makes cross-rank claim visibility — and therefore
    /// stored-byte totals — deterministic.
    pub fn quiesce(&self) {
        if !self.inline {
            let tx = self.tx.lock();
            if let Some(tx) = tx.as_ref() {
                let _ = tx.send(Msg::Flush);
            }
        }
        loop {
            if self.shared.settled.load(Ordering::Acquire)
                >= self.shared.published.load(Ordering::Acquire)
            {
                return;
            }
            let mut g = self.shared.signal.0.lock();
            self.shared
                .signal
                .1
                .wait_for(&mut g, Duration::from_millis(1));
        }
    }

    /// Crash the exchange: in-flight and queued batches are *dropped* and
    /// counted as orphans — never committed after the kill point, never
    /// silently re-stored.
    pub fn kill(&self) {
        self.killed.store(true, Ordering::SeqCst);
        drop(self.tx.lock().take());
        if let Some(w) = self.worker.lock().take() {
            let _ = w.join();
        }
    }

    /// Graceful close: drain and commit everything still queued.
    pub fn close(&self) {
        drop(self.tx.lock().take());
        if let Some(w) = self.worker.lock().take() {
            let _ = w.join();
        }
    }
}

impl Drop for ClaimExchange {
    fn drop(&mut self) {
        self.close();
    }
}

fn commit_batch(index: &RankDedupIndex, batch: ClaimBatch) {
    for (hash, loc) in batch.claims {
        index.commit_claim(hash, loc);
    }
}

fn exchange_loop(
    rx: Receiver<Msg>,
    index: Arc<RankDedupIndex>,
    shared: Arc<ExchangeShared>,
    killed: Arc<AtomicBool>,
    seed: u64,
    window: usize,
    plan: Option<Arc<FaultPlan>>,
) {
    let mut rng = SplitMix64::new(seed ^ 0x0063_6c61_696d_7321);
    let mut held: Vec<ClaimBatch> = Vec::new();
    let mut deferred: Vec<ClaimBatch> = Vec::new();
    let commit = |b: ClaimBatch| {
        commit_batch(&index, b);
        shared.settle();
    };
    let drop_batch = |b: ClaimBatch| {
        index.metrics().on_orphans(b.claims.len() as u64);
        drop(b);
        shared.settle();
    };
    while let Ok(msg) = rx.recv() {
        match msg {
            Msg::Batch(b) => {
                let fault = plan
                    .as_ref()
                    .and_then(|p| p.next_op("exchange", OpKind::Put));
                match fault {
                    Some(FaultKind::LatencySpike { .. }) => deferred.push(b),
                    Some(FaultKind::RankLoss { rank }) if b.claimant.0 == rank => drop_batch(b),
                    Some(FaultKind::TransientIo)
                    | Some(FaultKind::TornWrite { .. })
                    | Some(FaultKind::BitFlip { .. }) => drop_batch(b),
                    _ => {
                        held.push(b);
                        while held.len() > window {
                            let i = (rng.next() % held.len() as u64) as usize;
                            let b = held.swap_remove(i);
                            commit(b);
                        }
                    }
                }
            }
            Msg::Flush => {
                while !held.is_empty() {
                    let i = (rng.next() % held.len() as u64) as usize;
                    let b = held.swap_remove(i);
                    commit(b);
                }
                for b in deferred.drain(..) {
                    commit(b);
                }
            }
        }
    }
    // Disconnected. A crash discards everything still held (typed orphans,
    // never committed past the kill point); a graceful close drains it.
    if killed.load(Ordering::SeqCst) {
        for b in held.drain(..).chain(deferred.drain(..)) {
            drop_batch(b);
        }
    } else {
        while !held.is_empty() {
            let i = (rng.next() % held.len() as u64) as usize;
            let b = held.swap_remove(i);
            commit(b);
        }
        for b in deferred.drain(..) {
            commit(b);
        }
    }
}

/// Configuration of the producer-side dedup transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankDedupConfig {
    /// Ranks sharing the index (the hash space is sharded across these).
    pub ranks: u32,
    /// Grid chunk length. For grid alignment across ranks this should
    /// equal the diff chunk size the checkpointer uses.
    pub chunk_len: usize,
}

/// The per-cluster dedup engine: the shared [`RankDedupIndex`], the
/// [`ClaimExchange`] stage, and the payload transform that rewrites
/// submitted diffs into [`RankDedupRecord`]s.
pub struct RankDedupEngine {
    cfg: RankDedupConfig,
    index: Arc<RankDedupIndex>,
    exchange: ClaimExchange,
}

impl RankDedupEngine {
    /// An engine with an inline exchange (deterministic stored bytes).
    pub fn new(cfg: RankDedupConfig, metrics: RankDedupMetrics) -> Arc<Self> {
        let index = Arc::new(RankDedupIndex::new(cfg.ranks, metrics));
        let exchange = ClaimExchange::inline(Arc::clone(&index));
        Arc::new(RankDedupEngine {
            cfg,
            index,
            exchange,
        })
    }

    /// An engine whose exchange reorders/faults claims per the seed and
    /// plan (see [`ClaimExchange::with_schedule`]).
    pub fn with_exchange(
        cfg: RankDedupConfig,
        metrics: RankDedupMetrics,
        seed: u64,
        window: usize,
        plan: Option<Arc<FaultPlan>>,
    ) -> Arc<Self> {
        let index = Arc::new(RankDedupIndex::new(cfg.ranks, metrics));
        let exchange = ClaimExchange::with_schedule(Arc::clone(&index), seed, window, plan);
        Arc::new(RankDedupEngine {
            cfg,
            index,
            exchange,
        })
    }

    pub fn config(&self) -> RankDedupConfig {
        self.cfg
    }

    pub fn index(&self) -> &Arc<RankDedupIndex> {
        &self.index
    }

    pub fn exchange(&self) -> &ClaimExchange {
        &self.exchange
    }

    /// Barrier: wait until every published claim batch settled.
    pub fn quiesce(&self) {
        self.exchange.quiesce();
    }

    /// Crash the exchange stage (see [`ClaimExchange::kill`]).
    pub fn kill(&self) {
        self.exchange.kill();
    }

    /// Rewrite one submitted payload against the cluster index: cut it on
    /// the chunk grid (metadata prefix as one variable-length local
    /// entry), replace chunks whose hash has a committed claim with
    /// [`RemoteRef`]s, store first occurrences locally, and publish claims
    /// for them. Always returns a [`RankDedupRecord`] payload, so the
    /// on/off switch is uniform per runtime.
    pub fn encode(&self, id: ObjectId, bytes: Vec<u8>) -> Vec<u8> {
        let chunk_len = self.cfg.chunk_len.max(1);
        let off = Diff::payload_offset(&bytes).unwrap_or(0).min(bytes.len());
        let orig_checksum = frame::checksum64(id.0, id.1, &bytes);
        let mut entries: Vec<RankDedupEntry> = Vec::new();
        let mut local: Vec<u8> = Vec::new();
        // Hashes already claimed by *this* object (self-dedup): entry
        // index of their local copy.
        let mut pending: HashMap<ChunkHash, u32> = HashMap::new();
        let mut claims: Vec<(ChunkHash, ClaimLoc)> = Vec::new();
        let mut refs: HashSet<ObjectId> = HashSet::new();
        let mut remote_refs = 0u64;
        let mut bytes_saved = 0u64;
        if off > 0 {
            entries.push(RankDedupEntry::Local { len: off as u32 });
            local.extend_from_slice(&bytes[..off]);
        }
        for chunk in bytes[off..].chunks(chunk_len) {
            let idx = entries.len() as u32;
            let hash = chunk_hash(chunk);
            if let Some(&at) = pending.get(&hash) {
                entries.push(RankDedupEntry::Remote(RemoteRef {
                    owner_rank: id.0,
                    ckpt_id: id.1,
                    chunk: at,
                }));
                remote_refs += 1;
                bytes_saved += chunk.len() as u64;
                continue;
            }
            if let Some(loc) = self.index.lookup(hash) {
                entries.push(RankDedupEntry::Remote(loc.reference()));
                refs.insert(loc.object());
                remote_refs += 1;
                bytes_saved += chunk.len() as u64;
                continue;
            }
            entries.push(RankDedupEntry::Local {
                len: chunk.len() as u32,
            });
            local.extend_from_slice(chunk);
            pending.insert(hash, idx);
            claims.push((
                hash,
                ClaimLoc {
                    rank: id.0,
                    ckpt_id: id.1,
                    chunk: idx,
                },
            ));
        }
        // Pin referenced objects *before* this object becomes visible, so
        // a GC floor can never outrun a reference.
        for to in refs {
            self.index.add_ref(id, to);
        }
        self.index
            .metrics()
            .on_remote_refs(remote_refs, bytes_saved);
        // Claims for hashes this rank's shard owns commit locally; the
        // rest go through the exchange (the cross-rank publication).
        let (own, cross): (Vec<_>, Vec<_>) = claims
            .into_iter()
            .partition(|(h, _)| self.index.owner_of(*h) == id.0);
        for (hash, loc) in own {
            self.index.commit_claim(hash, loc);
        }
        self.exchange.publish(ClaimBatch {
            claimant: id,
            claims: cross,
        });
        RankDedupRecord {
            rank: id.0,
            ckpt_id: id.1,
            chunk_len: chunk_len as u32,
            orig_len: bytes.len() as u64,
            orig_checksum,
            entries,
            local,
        }
        .encode()
    }
}

/// Resolve a rank-dedup record back to its original payload. `fetch`
/// returns the *stored payload bytes* of a referenced object (themselves a
/// serialized record), through whatever read path the caller has — the
/// tier chain's `locate` (including group-tier reconstruction for lost
/// ranks) at runtime, raw files in the CLI. Depth-1: referenced entries
/// must be local in their record. The reassembly is verified against the
/// recorded original length and checksum before it is returned.
pub fn resolve_record(
    id: ObjectId,
    bytes: &[u8],
    fetch: &dyn Fn(ObjectId) -> Option<Vec<u8>>,
) -> Result<Vec<u8>, RankDedupError> {
    let rec = RankDedupRecord::decode(bytes).map_err(RankDedupError::Decode)?;
    if (rec.rank, rec.ckpt_id) != id {
        return Err(RankDedupError::Decode(frame::FrameError::IdMismatch {
            expected: id,
            got: (rec.rank, rec.ckpt_id),
        }));
    }
    let mut cache: HashMap<ObjectId, RankDedupRecord> = HashMap::new();
    let mut out: Vec<u8> = Vec::new();
    for (i, entry) in rec.entries.iter().enumerate() {
        match entry {
            RankDedupEntry::Local { .. } => {
                let slice = rec
                    .local_slice(i as u32)
                    .expect("local entry of a decoded record");
                out.extend_from_slice(slice);
            }
            RankDedupEntry::Remote(r) => {
                let target = (r.owner_rank, r.ckpt_id);
                let chunk = if target == id {
                    rec.local_slice(r.chunk)
                        .ok_or(RankDedupError::NotLocal { reference: *r })?
                } else {
                    let rec2 = match cache.entry(target) {
                        Entry::Occupied(o) => o.into_mut(),
                        Entry::Vacant(v) => {
                            let raw = fetch(target)
                                .ok_or(RankDedupError::DanglingRef { reference: *r })?;
                            let rec2 =
                                RankDedupRecord::decode(&raw).map_err(RankDedupError::Decode)?;
                            v.insert(rec2)
                        }
                    };
                    rec2.local_slice(r.chunk)
                        .ok_or(RankDedupError::NotLocal { reference: *r })?
                };
                out.extend_from_slice(chunk);
            }
        }
    }
    if out.len() as u64 != rec.orig_len {
        return Err(RankDedupError::LengthMismatch {
            expected: rec.orig_len,
            got: out.len() as u64,
        });
    }
    if frame::checksum64(rec.rank, rec.ckpt_id, &out) != rec.orig_checksum {
        return Err(RankDedupError::ChecksumMismatch);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;

    fn engine(ranks: u32, chunk: usize) -> Arc<RankDedupEngine> {
        RankDedupEngine::new(
            RankDedupConfig {
                ranks,
                chunk_len: chunk,
            },
            RankDedupMetrics::detached(),
        )
    }

    fn payload(tag: u8, len: usize) -> Vec<u8> {
        (0..len).map(|i| (i as u8).wrapping_mul(31) ^ tag).collect()
    }

    #[test]
    fn identical_payloads_dedup_across_ranks() {
        let e = engine(4, 64);
        let shared = payload(7, 64 * 8);
        let first = e.encode((0, 0), shared.clone());
        let second = e.encode((1, 0), shared.clone());
        assert!(
            second.len() < first.len() / 2,
            "duplicate rank must store mostly references: {} vs {}",
            second.len(),
            first.len()
        );
        let store: HashMap<ObjectId, Vec<u8>> =
            [((0, 0), first.clone()), ((1, 0), second.clone())].into();
        let fetch = |id: ObjectId| store.get(&id).cloned();
        assert_eq!(resolve_record((0, 0), &first, &fetch).unwrap(), shared);
        assert_eq!(resolve_record((1, 0), &second, &fetch).unwrap(), shared);
    }

    #[test]
    fn self_references_resolve_without_fetch() {
        let e = engine(2, 32);
        // A payload that repeats one 32-byte chunk: later occurrences must
        // self-reference the first, with no cross-object fetch.
        let chunk = payload(3, 32);
        let bytes: Vec<u8> = chunk.iter().copied().cycle().take(32 * 6).collect();
        let enc = e.encode((0, 0), bytes.clone());
        let rec = RankDedupRecord::decode(&enc).unwrap();
        assert!(rec
            .remote_refs()
            .all(|r| (r.owner_rank, r.ckpt_id) == (0, 0)));
        let fetch = |_: ObjectId| -> Option<Vec<u8>> { panic!("self refs must not fetch") };
        assert_eq!(resolve_record((0, 0), &enc, &fetch).unwrap(), bytes);
    }

    #[test]
    fn dangling_reference_is_typed_never_wrong_payload() {
        let e = engine(2, 64);
        let shared = payload(9, 64 * 4);
        let first = e.encode((0, 0), shared.clone());
        let second = e.encode((1, 0), shared.clone());
        let fetch_gone = |_: ObjectId| -> Option<Vec<u8>> { None };
        match resolve_record((1, 0), &second, &fetch_gone) {
            Err(RankDedupError::DanglingRef { .. }) => {}
            other => panic!("expected DanglingRef, got {other:?}"),
        }
        // A wrong referenced payload fails the checksum, typed.
        let decoy = e.encode((0, 1), payload(250, 64 * 4));
        let fetch_wrong = move |_: ObjectId| Some(decoy.clone());
        assert!(matches!(
            resolve_record((1, 0), &second, &fetch_wrong),
            Err(RankDedupError::ChecksumMismatch) | Err(RankDedupError::NotLocal { .. })
        ));
        let fetch_ok = move |_: ObjectId| Some(first.clone());
        assert_eq!(resolve_record((1, 0), &second, &fetch_ok).unwrap(), shared);
    }

    #[test]
    fn compact_below_pins_referenced_objects_and_retires_claims() {
        let e = engine(2, 64);
        let shared = payload(1, 64 * 4);
        let _first = e.encode((0, 0), shared.clone());
        let _second = e.encode((1, 3), shared.clone());
        let ix = e.index();
        assert!(ix.is_pinned((0, 0)));
        // Rank 0 advances its floor: (0,0) is pinned by (1,3)'s refs.
        let keep = ix.compact_below(0, 2);
        assert!(keep.contains(&(0, 0)));
        // Rank 1 compacts its referer away; a later rank-0 floor advance
        // releases (0,0) and retires the claims into it.
        let before = ix.claim_count();
        ix.compact_below(1, 4);
        assert!(!ix.is_pinned((0, 0)));
        let keep = ix.compact_below(0, 2);
        assert!(keep.is_empty());
        assert!(
            ix.claim_count() < before,
            "claims into evicted objects retire"
        );
        // New occurrences of the same content re-claim instead of dangling.
        let third = e.encode((1, 5), shared.clone());
        let rec = RankDedupRecord::decode(&third).unwrap();
        assert!(rec
            .remote_refs()
            .all(|r| (r.owner_rank, r.ckpt_id) == (1, 5)));
    }

    #[test]
    fn exchange_kill_drops_claims_as_typed_orphans() {
        let reg = Arc::new(Registry::new());
        let e = RankDedupEngine::with_exchange(
            RankDedupConfig {
                ranks: 2,
                chunk_len: 64,
            },
            RankDedupMetrics::bound(Arc::clone(&reg)),
            42,
            4,
            None,
        );
        // Cross-shard claims queue in the window; kill before quiesce.
        let a = payload(5, 64 * 8);
        let _ = e.encode((0, 0), a.clone());
        e.kill();
        let snapshot = reg.snapshot_json();
        assert!(
            snapshot.contains("rankdedup/orphans"),
            "killed exchange must type dropped claims: {snapshot}"
        );
        // Publishing after the kill also orphans, deterministically.
        let _ = e.encode((1, 0), payload(6, 64 * 8));
        e.quiesce();
    }

    #[test]
    fn seeded_reorder_is_deterministic() {
        let data = payload(99, 64 * 4);
        // Claim only from ranks that own none of the chunks' shards:
        // every claim crosses the exchange (no inline commits to race
        // against) and the window is wider than the batch count, so
        // nothing commits until quiesce drains the held set in seeded
        // order — the winner is a pure function of the seed.
        let owners: Vec<u32> = (0..4usize)
            .map(|c| owner_of(chunk_hash(&data[c * 64..][..64]), 8))
            .collect();
        let claimants: Vec<u32> = (0..8).filter(|r| !owners.contains(r)).collect();
        assert!(claimants.len() >= 2, "need contention: {owners:?}");
        let run = |seed: u64| -> Vec<Option<u32>> {
            let e = RankDedupEngine::with_exchange(
                RankDedupConfig {
                    ranks: 8,
                    chunk_len: 64,
                },
                RankDedupMetrics::detached(),
                seed,
                64,
                None,
            );
            for &r in &claimants {
                let _ = e.encode((r, 0), data.clone());
            }
            e.quiesce();
            (0..4usize)
                .map(|c| {
                    let h = chunk_hash(&data[c * 64..][..64]);
                    e.index().lookup(h).map(|l| l.rank)
                })
                .collect()
        };
        let winners = run(7);
        assert_eq!(winners, run(7), "same seed, same winners");
        // One batch drains first and claims every chunk.
        assert!(winners.iter().all(|w| *w == winners[0]));
        assert!(claimants.contains(&winners[0].unwrap()));
    }

    #[test]
    fn latency_spike_defers_claims_until_quiesce() {
        let plan = FaultPlan::builder()
            .on_put("exchange", 0, FaultKind::LatencySpike { micros: 50 })
            .build();
        let e = RankDedupEngine::with_exchange(
            RankDedupConfig {
                ranks: 4,
                chunk_len: 64,
            },
            RankDedupMetrics::detached(),
            1,
            0,
            Some(plan),
        );
        let shared = payload(8, 64 * 4);
        let _ = e.encode((1, 0), shared.clone());
        e.quiesce();
        // Despite the spike, quiesce flushed the deferred batch: the
        // second rank sees the claims.
        let enc = e.encode((2, 0), shared.clone());
        let rec = RankDedupRecord::decode(&enc).unwrap();
        assert!(rec.remote_refs().count() > 0);
    }
}
