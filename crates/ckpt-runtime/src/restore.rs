//! The parallel restart engine: single-pass chain resolution fed by
//! prefetched tier reads.
//!
//! [`ckpt_dedup::restart::SinglePassRestore`] resolves a record chain
//! newest→oldest, needing each encoded diff exactly once. That shape is a
//! pipeline: while the resolution kernel works on record *j*, the next
//! record *j−1* can already be on its way out of the tier chain. This
//! module supplies that overlap with the same depth-1 bounded-channel
//! double buffer the submit path uses ([`crate::pipeline`]): a reader
//! thread walks the chain downward through [`TierChain::locate`] (so
//! corrupt shallow copies are skipped and repaired exactly like the
//! sequential restart path) while the caller's thread decodes and feeds.
//!
//! A chain whose newest surviving run sits above a lost record is *not*
//! silently truncated to stale state: the walk either terminates at a
//! self-contained rebase record (resolution completes and the reader is
//! dropped) or reaches the hole and reports [`LineageError::Hole`].

use crate::lineage::LineageError;
use crate::runtime::{AsyncRuntime, TierChain};
use ckpt_dedup::diff::Diff;
use ckpt_dedup::restart::{RestartStats, SinglePassRestore};
use ckpt_telemetry::Registry;
use crossbeam::channel::bounded;
use gpu_sim::Device;
use std::time::Instant;

/// Result of one parallel restart.
#[derive(Debug)]
pub struct ParallelRestoreOutcome {
    /// Checkpoint id of the restored version (the newest surviving one).
    pub version: u32,
    /// The restored bytes — bit-identical to sequential replay.
    pub data: Vec<u8>,
    /// Resolution-walk counters from the single-pass engine.
    pub stats: RestartStats,
}

/// Restore the latest surviving version of `rank`'s record in a single
/// pass, prefetching tier reads one record ahead. Records are fetched
/// via [`TierChain::locate`], so corruption fallback and repair behave
/// exactly as in [`crate::lineage::restore_rank`]; the restored bytes are
/// bit-identical to that sequential replay at any thread count.
///
/// When `registry` is given, the walk records `restore/*` counters (see
/// the metric table on the runtime's telemetry).
pub fn restore_rank_latest_parallel(
    tiers: &TierChain,
    device: &Device,
    rank: u32,
    registry: Option<&Registry>,
) -> Result<ParallelRestoreOutcome, LineageError> {
    // Newest surviving id: probe candidates from the tier listings top
    // down; `locate` skips (and quarantines) copies that fail
    // verification, so the first hit is the newest restorable target.
    let mut candidates: Vec<u32> = Vec::new();
    for tier in [&tiers.pfs, &tiers.ssd, &tiers.host] {
        for (r, k) in tier.resident().into_iter().chain(tier.quarantined()) {
            if r == rank {
                candidates.push(k);
            }
        }
    }
    // A fully-lost rank has no local listings at all; its redundancy
    // group still names the ids, and `locate` rebuilds them on demand.
    for (r, k) in tiers.redundancy_member_ids() {
        if r == rank {
            candidates.push(k);
        }
    }
    candidates.sort_unstable();
    candidates.dedup();
    let mut target: Option<(u32, Vec<u8>)> = None;
    for &k in candidates.iter().rev() {
        if let Some(bytes) = tiers.locate((rank, k)) {
            target = Some((k, bytes));
            break;
        }
    }
    let Some((top, top_bytes)) = target else {
        return Err(LineageError::Empty);
    };

    let mut records_read = 1u64;
    let mut bytes_read = top_bytes.len() as u64;
    let mut fetch_wait_ns = 0u64;

    // Positions are absolute checkpoint ids (base 0): the engine stops on
    // its own at a self-contained rebase record, so the true chain base
    // never needs to be known up front.
    let top_diff = Diff::decode(&top_bytes).map_err(|e| LineageError::Decode(top, e))?;
    let mut engine =
        SinglePassRestore::begin(device, 0, &top_diff).map_err(LineageError::Restore)?;

    let result: Result<(), LineageError> = std::thread::scope(|s| {
        let (tx, rx) = bounded::<(u32, Option<Vec<u8>>)>(1);
        s.spawn(move || {
            // Prefetch reader: one record in the channel while the engine
            // resolves the previous one. A dropped receiver (resolution
            // complete, or an error) ends the walk.
            for id in (0..top).rev() {
                let bytes = tiers.locate((rank, id));
                if tx.send((id, bytes)).is_err() {
                    break;
                }
            }
        });
        let mut done = engine.feed(&top_diff).map_err(LineageError::Restore)?;
        while !done {
            let t0 = Instant::now();
            let (id, bytes) = rx.recv().expect("reader thread feeds every id down to 0");
            fetch_wait_ns += t0.elapsed().as_nanos() as u64;
            let Some(bytes) = bytes else {
                // Every copy of `id` is missing or corrupt, and newer
                // records still need it: a genuine hole, not a chain end.
                return Err(LineageError::Hole {
                    rank,
                    missing: id,
                    present_above: id + 1,
                });
            };
            records_read += 1;
            bytes_read += bytes.len() as u64;
            let diff = Diff::decode(&bytes).map_err(|e| LineageError::Decode(id, e))?;
            done = engine.feed(&diff).map_err(LineageError::Restore)?;
        }
        Ok(())
        // `rx` drops here; the reader's next send fails and it exits.
    });
    result?;
    let (data, stats) = engine.finish().map_err(LineageError::Restore)?;

    if let Some(reg) = registry {
        reg.counter("restore/chains_restored").inc();
        reg.counter("restore/records_read").add(records_read);
        reg.counter("restore/bytes_read").add(bytes_read);
        reg.counter("restore/regions_copied")
            .add(stats.regions_copied);
        reg.counter("restore/bytes_copied").add(stats.bytes_copied);
        reg.counter("restore/fetch_wait_ns").add(fetch_wait_ns);
    }

    Ok(ParallelRestoreOutcome {
        version: top,
        data,
        stats,
    })
}

impl AsyncRuntime {
    /// [`restore_rank_latest_parallel`] against this runtime's tier chain,
    /// recording `restore/*` telemetry into its registry.
    pub fn restore_latest_parallel(
        &self,
        device: &Device,
        rank: u32,
    ) -> Result<ParallelRestoreOutcome, LineageError> {
        restore_rank_latest_parallel(self.tiers(), device, rank, Some(self.telemetry()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lineage::{restore_rank_latest, LineageError};
    use ckpt_dedup::prelude::*;

    fn run_chain(rebase_at: Option<u32>) -> (crate::runtime::TierChain, Vec<Vec<u8>>) {
        let tiers = crate::runtime::TierChain::new();
        let dev = gpu_sim::Device::a100();
        let mut ckpt = TreeCheckpointer::new(dev, TreeConfig::new(64));
        let mut data: Vec<u8> = (0..8192u32).map(|i| (i % 241) as u8).collect();
        let mut snapshots = Vec::new();
        for k in 0..6u32 {
            if k > 0 {
                let len = data.len();
                for j in 0..96 {
                    data[(k as usize * 997 + j * 13) % len] ^= 0x5a;
                }
            }
            snapshots.push(data.clone());
            let out = if rebase_at == Some(k) {
                ckpt.rebase_checkpoint(&data)
            } else {
                ckpt.checkpoint(&data)
            };
            tiers.pfs.put((0, k), out.diff.encode()).unwrap();
        }
        (tiers, snapshots)
    }

    #[test]
    fn parallel_matches_sequential_and_counts_telemetry() {
        let (tiers, snapshots) = run_chain(None);
        let device = gpu_sim::Device::a100();
        let registry = ckpt_telemetry::Registry::new();
        let out = restore_rank_latest_parallel(&tiers, &device, 0, Some(&registry)).unwrap();
        assert_eq!(out.version, 5);
        assert_eq!(&out.data, snapshots.last().unwrap());
        let (seq_last, seq) = restore_rank_latest(&tiers, 0).unwrap();
        assert_eq!((out.version, &out.data), (seq_last, &seq));
        let json = registry.snapshot_json();
        for key in ["restore/chains_restored", "restore/records_read"] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn rebase_record_stops_the_prefetch_walk() {
        let (tiers, snapshots) = run_chain(Some(4));
        let device = gpu_sim::Device::a100();
        let out = restore_rank_latest_parallel(&tiers, &device, 0, None).unwrap();
        assert_eq!(&out.data, snapshots.last().unwrap());
        assert!(
            out.stats.records_visited <= 2,
            "walk must stop at the rebase record, visited {}",
            out.stats.records_visited
        );
    }

    #[test]
    fn compacted_chain_restores_without_the_gc_ed_prefix() {
        let (tiers, snapshots) = run_chain(Some(3));
        for k in 0..3u32 {
            assert!(tiers.pfs.evict((0, k)));
        }
        let device = gpu_sim::Device::a100();
        let out = restore_rank_latest_parallel(&tiers, &device, 0, None).unwrap();
        assert_eq!(out.version, 5);
        assert_eq!(&out.data, snapshots.last().unwrap());
    }

    #[test]
    fn hole_below_the_surviving_run_is_typed() {
        let (tiers, _) = run_chain(None);
        assert!(tiers.pfs.evict((0, 2)));
        let device = gpu_sim::Device::a100();
        let err = restore_rank_latest_parallel(&tiers, &device, 0, None).unwrap_err();
        match err {
            LineageError::Hole {
                rank: 0,
                missing: 2,
                present_above: 3,
            } => {}
            other => panic!("expected a typed hole, got {other:?}"),
        }
    }

    #[test]
    fn empty_rank_errors() {
        let tiers = crate::runtime::TierChain::new();
        let device = gpu_sim::Device::a100();
        assert!(matches!(
            restore_rank_latest_parallel(&tiers, &device, 9, None),
            Err(LineageError::Empty)
        ));
    }
}
