//! Multi-rank strong-scaling harness (the Fig. 6 experiment).
//!
//! "Each process checkpoints independently, but multiple GPUs copying data
//! to a shared CPU can impact performance. We measure the sum of the first
//! ten checkpoints for all processes. Throughput is measured by taking the
//! sum of 10 checkpoints and dividing it by the maximum runtime spent on
//! de-duplication across all processes" (§3.3).
//!
//! Each rank gets its own simulated device whose host-link contention is set
//! to the number of co-located GPUs on its node (8 per ThetaGPU node), its
//! own checkpointer state, and a share of one [`AsyncRuntime`].

use crate::pipeline::CheckpointPipeline;
use crate::runtime::{AsyncRuntime, TierChain};
use ckpt_dedup::prelude::*;
use gpu_sim::Device;
use std::sync::Arc;

/// Which method a scaling run uses (Fig. 6 compares Tree vs Full).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalingMethod {
    Tree,
    Full,
    Basic,
    List,
}

impl ScalingMethod {
    pub fn name(&self) -> &'static str {
        match self {
            ScalingMethod::Tree => "Tree",
            ScalingMethod::Full => "Full",
            ScalingMethod::Basic => "Basic",
            ScalingMethod::List => "List",
        }
    }

    fn build(&self, device: Device, chunk_size: usize) -> Box<dyn Checkpointer> {
        match self {
            ScalingMethod::Tree => {
                Box::new(TreeCheckpointer::new(device, TreeConfig::new(chunk_size)))
            }
            ScalingMethod::Full => Box::new(FullCheckpointer::new(device, chunk_size)),
            ScalingMethod::Basic => Box::new(BasicCheckpointer::new(device, chunk_size)),
            ScalingMethod::List => {
                Box::new(ListCheckpointer::new(device, TreeConfig::new(chunk_size)))
            }
        }
    }
}

/// When the coordinator emits a **rebase** checkpoint: a self-contained
/// record that references nothing earlier, so it is a legal restart chain
/// head and every record below it becomes garbage-collectable. Bounds the
/// chain a restart must walk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RebasePolicy {
    /// The chain grows unboundedly for the lifetime of the run.
    Never,
    /// Rebase every `n`-th checkpoint after the last rebase point.
    EveryN(u32),
    /// Rebase when the modeled restart read time of the accumulated chain
    /// (chain bytes over PFS bandwidth) exceeds this budget.
    RestoreBudget { modeled_sec: f64 },
}

impl RebasePolicy {
    /// Decide at distance `since` checkpoints after the last rebase point,
    /// with `chain_bytes` stored since then, read back at `read_bps`.
    fn due(&self, since: u32, chain_bytes: u64, read_bps: f64) -> bool {
        match *self {
            RebasePolicy::Never => false,
            RebasePolicy::EveryN(n) => since >= n.max(1),
            RebasePolicy::RestoreBudget { modeled_sec } => {
                chain_bytes as f64 / read_bps > modeled_sec
            }
        }
    }
}

/// Configuration of one strong-scaling run.
#[derive(Debug, Clone, Copy)]
pub struct ScalingConfig {
    pub method: ScalingMethod,
    pub n_ranks: usize,
    /// GPUs per node (PCIe contenders); ThetaGPU has 8.
    pub gpus_per_node: usize,
    pub chunk_size: usize,
    /// Chain-compaction policy (see [`RebasePolicy`]).
    pub rebase: RebasePolicy,
}

/// Per-rank outcome.
#[derive(Debug)]
pub struct RankReport {
    pub rank: u32,
    pub stats: RecordStats,
    /// Modeled device seconds spent producing + transferring diffs.
    pub modeled_sec: f64,
    pub measured_sec: f64,
    /// Rebase records this rank emitted (see [`RebasePolicy`]).
    pub rebases: u32,
    /// Records garbage-collected below the last durable rebase point.
    pub gc_evicted: usize,
}

/// Aggregate outcome of a scaling run.
#[derive(Debug)]
pub struct ScalingReport {
    pub method: ScalingMethod,
    pub n_ranks: usize,
    /// Σ original checkpoint bytes over all ranks and checkpoints (what Full
    /// would store).
    pub total_full_bytes: u64,
    /// Σ stored diff bytes (Fig. 6a's y-axis).
    pub total_stored_bytes: u64,
    /// max over ranks of modeled de-duplication time (Fig. 6b denominator).
    pub max_rank_modeled_sec: f64,
    pub max_rank_measured_sec: f64,
    pub ranks: Vec<RankReport>,
}

impl ScalingReport {
    /// Fig. 6a metric: total checkpoint size reduction vs Full.
    pub fn size_reduction(&self) -> f64 {
        self.total_full_bytes as f64 / self.total_stored_bytes.max(1) as f64
    }

    /// Fig. 6b metric (modeled): aggregate de-duplication throughput.
    pub fn modeled_throughput(&self) -> f64 {
        self.total_full_bytes as f64 / self.max_rank_modeled_sec.max(1e-12)
    }

    /// Fig. 6b metric on measured wall time.
    pub fn measured_throughput(&self) -> f64 {
        self.total_full_bytes as f64 / self.max_rank_measured_sec.max(1e-12)
    }
}

/// Run the scaling experiment. `snapshots_for(rank)` supplies each rank's
/// checkpoint sequence (each rank owns an equal partition of the problem, so
/// per-rank data shrinks as ranks grow — strong scaling).
///
/// Each rank submits through its own [`CheckpointPipeline`], so checkpoint
/// *k*'s encode + host staging overlaps checkpoint *k+1*'s de-duplication —
/// the double-buffered tail the telemetry's `pipeline/*` series records.
pub fn run_scaling<F>(
    cfg: ScalingConfig,
    runtime: &Arc<AsyncRuntime>,
    snapshots_for: F,
) -> ScalingReport
where
    F: Fn(u32) -> Vec<Vec<u8>> + Sync,
{
    let contenders = cfg.n_ranks.min(cfg.gpus_per_node).max(1) as u32;
    let reports: Vec<RankReport> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.n_ranks as u32)
            .map(|rank| {
                let snapshots_for = &snapshots_for;
                s.spawn(move || {
                    let device = Device::a100();
                    device.set_contenders(contenders);
                    let mut method = cfg.method.build(device.clone(), cfg.chunk_size);
                    let snapshots = snapshots_for(rank);
                    let mut stats = RecordStats::new();
                    let pipe = CheckpointPipeline::new(Arc::clone(runtime));
                    let read_bps = runtime.tiers().pfs.config().bandwidth_bps;
                    let mut last_rebase = 0u32;
                    let mut chain_bytes = 0u64;
                    let mut rebases = 0u32;
                    let t0 = std::time::Instant::now();
                    for (k, snap) in snapshots.iter().enumerate() {
                        let k = k as u32;
                        let due = k > 0 && cfg.rebase.due(k - last_rebase, chain_bytes, read_bps);
                        let out = if due {
                            rebases += 1;
                            last_rebase = k;
                            chain_bytes = 0;
                            method.rebase_checkpoint(snap)
                        } else {
                            method.checkpoint(snap)
                        };
                        chain_bytes += out.stats.stored_bytes;
                        stats.push(out.stats);
                        let diff = out.diff;
                        pipe.submit_with(rank, k, Box::new(move || diff.encode()));
                    }
                    let measured_sec = t0.elapsed().as_secs_f64();
                    let pstats = pipe.close();
                    assert_eq!(pstats.aborted, 0, "rank {rank}: host staging full");
                    // Chain compaction: only after the rebase record is
                    // durable may the records below it be dropped — a crash
                    // in between must still find a restorable chain. With a
                    // redundancy group, the rebase record's *group encoding*
                    // must be durable too before GC advances, or a rank loss
                    // right after compaction would leave the group unable to
                    // rebuild the only legal chain head.
                    let gc_evicted = if last_rebase > 0 {
                        runtime.wait_durable(&[(rank, last_rebase)]);
                        runtime.wait_redundancy_durable(&[(rank, last_rebase)]);
                        let n = compact_below(runtime.tiers(), rank, last_rebase);
                        if let Some(red) = runtime.tiers().redundancy() {
                            red.compact_below(rank, last_rebase);
                        }
                        n
                    } else {
                        0
                    };
                    RankReport {
                        rank,
                        modeled_sec: stats.total_modeled_sec(),
                        measured_sec,
                        stats,
                        rebases,
                        gc_evicted,
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread panicked"))
            .collect()
    });

    let total_full_bytes = reports.iter().map(|r| r.stats.total_uncompressed()).sum();
    let total_stored_bytes = reports.iter().map(|r| r.stats.total_stored()).sum();
    let max_rank_modeled_sec = reports.iter().map(|r| r.modeled_sec).fold(0.0f64, f64::max);
    let max_rank_measured_sec = reports
        .iter()
        .map(|r| r.measured_sec)
        .fold(0.0f64, f64::max);
    ScalingReport {
        method: cfg.method,
        n_ranks: cfg.n_ranks,
        total_full_bytes,
        total_stored_bytes,
        max_rank_modeled_sec,
        max_rank_measured_sec,
        ranks: reports,
    }
}

/// Garbage-collect every record of `rank` below a **durable** rebase
/// point: evict ids `0..rebase_id` from all tiers. The caller must have
/// confirmed durability of `(rank, rebase_id)` first — compaction that
/// races a crash must err on keeping the old chain (see the
/// kill-during-compaction crash schedule). Returns evictions performed.
pub fn compact_below(tiers: &TierChain, rank: u32, rebase_id: u32) -> usize {
    // Cluster-dedup GC floor: an object another rank still references
    // remotely must outlive this rank's rebase — evicting it would turn
    // those references dangling. The index releases this rank's own
    // outbound edges, retires claims into what *will* be evicted, and
    // names what must stay.
    let pinned = tiers
        .rank_dedup_index()
        .map(|ix| ix.compact_below(rank, rebase_id))
        .unwrap_or_default();
    let mut evicted = 0;
    for tier in [&tiers.pfs, &tiers.ssd, &tiers.host] {
        for (r, k) in tier.resident() {
            if r == rank && k < rebase_id && !pinned.contains(&(r, k)) && tier.evict((r, k)) {
                evicted += 1;
            }
        }
    }
    evicted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lineage::restore_rank;

    fn snapshots(rank: u32, n: usize, len: usize) -> Vec<Vec<u8>> {
        // Sparse updates per checkpoint, deterministic per rank.
        let mut data: Vec<u8> = (0..len)
            .map(|i| ((i as u64 * 31 + rank as u64 * 7) % 251) as u8)
            .collect();
        let mut out = vec![data.clone()];
        for k in 1..n {
            for j in 0..len / 200 {
                let at = (k * 911 + j * 53 + rank as usize) % len;
                data[at] = data[at].wrapping_add(1);
            }
            out.push(data.clone());
        }
        out
    }

    #[test]
    fn tree_beats_full_at_every_rank_count() {
        for n_ranks in [1usize, 4] {
            let rt_tree = Arc::new(AsyncRuntime::new());
            let rt_full = Arc::new(AsyncRuntime::new());
            let mk = |method| ScalingConfig {
                method,
                n_ranks,
                gpus_per_node: 8,
                chunk_size: 64,
                rebase: RebasePolicy::Never,
            };
            let tree = run_scaling(mk(ScalingMethod::Tree), &rt_tree, |r| {
                snapshots(r, 5, 64_000)
            });
            let full = run_scaling(mk(ScalingMethod::Full), &rt_full, |r| {
                snapshots(r, 5, 64_000)
            });
            assert_eq!(tree.total_full_bytes, full.total_full_bytes);
            assert!(
                tree.total_stored_bytes < full.total_stored_bytes / 2,
                "ranks {n_ranks}: tree {} vs full {}",
                tree.total_stored_bytes,
                full.total_stored_bytes
            );
            assert!(tree.size_reduction() > 2.0);
            assert!((full.size_reduction() - 1.0).abs() < 0.01);
        }
    }

    #[test]
    fn every_rank_record_restores_through_the_runtime() {
        let rt = Arc::new(AsyncRuntime::new());
        let cfg = ScalingConfig {
            method: ScalingMethod::Tree,
            n_ranks: 4,
            gpus_per_node: 8,
            chunk_size: 64,
            rebase: RebasePolicy::Never,
        };
        let report = run_scaling(cfg, &rt, |r| snapshots(r, 4, 32_000));
        assert_eq!(report.ranks.len(), 4);
        let ids: Vec<(u32, u32)> = (0..4u32)
            .flat_map(|r| (0..4u32).map(move |k| (r, k)))
            .collect();
        rt.wait_durable(&ids);
        for rank in 0..4u32 {
            let (base, versions) = restore_rank(rt.tiers(), rank).unwrap();
            assert_eq!(base, 0);
            let expect = snapshots(rank, 4, 32_000);
            assert_eq!(versions, expect, "rank {rank}");
        }
    }

    #[test]
    fn rebase_policy_compacts_and_still_restores_latest() {
        let rt = Arc::new(AsyncRuntime::new());
        let cfg = ScalingConfig {
            method: ScalingMethod::Tree,
            n_ranks: 2,
            gpus_per_node: 8,
            chunk_size: 64,
            rebase: RebasePolicy::EveryN(3),
        };
        let report = run_scaling(cfg, &rt, |r| snapshots(r, 8, 32_000));
        for rr in &report.ranks {
            // Checkpoints 3 and 6 are rebase points; everything below the
            // last durable rebase (id 6) was garbage-collected.
            assert_eq!(rr.rebases, 2, "rank {}", rr.rank);
            assert!(rr.gc_evicted > 0, "rank {}", rr.rank);
        }
        for rank in 0..2u32 {
            let (base, versions) = restore_rank(rt.tiers(), rank).unwrap();
            assert_eq!(base, 6, "rank {rank}");
            let expect = snapshots(rank, 8, 32_000);
            assert_eq!(versions.len(), 2);
            assert_eq!(&versions[0], &expect[6], "rank {rank}");
            assert_eq!(&versions[1], &expect[7], "rank {rank}");
        }
    }

    #[test]
    fn contention_reflects_gpus_per_node() {
        // Same work, more contenders -> larger modeled time per rank.
        let rt1 = Arc::new(AsyncRuntime::new());
        let rt8 = Arc::new(AsyncRuntime::new());
        let base = ScalingConfig {
            method: ScalingMethod::Full,
            n_ranks: 2,
            gpus_per_node: 1,
            chunk_size: 64,
            rebase: RebasePolicy::Never,
        };
        let crowded = ScalingConfig {
            gpus_per_node: 8,
            n_ranks: 8,
            ..base
        };
        let solo = run_scaling(base, &rt1, |r| snapshots(r, 3, 100_000));
        let packed = run_scaling(crowded, &rt8, |r| snapshots(r, 3, 100_000));
        let solo_rank = solo.max_rank_modeled_sec;
        let packed_rank = packed.max_rank_modeled_sec;
        assert!(
            packed_rank > 2.5 * solo_rank,
            "8-way contention {packed_rank} vs solo {solo_rank}"
        );
    }
}
