//! Integrity accounting: telemetry counters for frame verification and the
//! [`RecoveryReport`] produced by post-crash recovery.
//!
//! Counter inventory (stable JSON keys, created lazily so registries that
//! never see an integrity event keep their pre-existing schema):
//!
//! | metric | kind | meaning |
//! |---|---|---|
//! | `integrity/frames_verified` | counter | frames that passed verification on a read path |
//! | `integrity/frames_corrupt` | counter | frames that failed verification (quarantined) |
//! | `integrity/frames_repaired` | counter | corrupt copies rewritten from a redundant valid copy |

use crate::tier::ObjectId;
use ckpt_telemetry::{Counter, JsonWriter, Registry};
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// Lazily-registered integrity counters bound to a telemetry registry.
///
/// Handles are resolved on first use so that a runtime which never touches
/// an integrity path exports exactly the same metric set as before this
/// subsystem existed.
pub struct IntegrityCounters {
    registry: Arc<Registry>,
    verified: OnceLock<Arc<Counter>>,
    corrupt: OnceLock<Arc<Counter>>,
    repaired: OnceLock<Arc<Counter>>,
}

impl IntegrityCounters {
    /// Counters that will register into `registry` on first use.
    pub fn bound(registry: Arc<Registry>) -> Self {
        IntegrityCounters {
            registry,
            verified: OnceLock::new(),
            corrupt: OnceLock::new(),
            repaired: OnceLock::new(),
        }
    }

    /// Counters backed by a private registry (for tier chains constructed
    /// without a runtime; counts still accumulate and can be read back).
    pub fn detached() -> Self {
        Self::bound(Arc::new(Registry::new()))
    }

    pub fn on_verified(&self) {
        self.verified
            .get_or_init(|| self.registry.counter("integrity/frames_verified"))
            .inc();
    }

    pub fn on_corrupt(&self) {
        self.corrupt
            .get_or_init(|| self.registry.counter("integrity/frames_corrupt"))
            .inc();
    }

    pub fn on_repaired(&self) {
        self.repaired
            .get_or_init(|| self.registry.counter("integrity/frames_repaired"))
            .inc();
    }

    pub fn verified_count(&self) -> u64 {
        self.verified.get().map_or(0, |c| c.get())
    }

    pub fn corrupt_count(&self) -> u64 {
        self.corrupt.get().map_or(0, |c| c.get())
    }

    pub fn repaired_count(&self) -> u64 {
        self.repaired.get().map_or(0, |c| c.get())
    }
}

/// Post-recovery status of one stored object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectStatus {
    /// The durable (PFS) copy verified bit-exact.
    Verified,
    /// The durable copy was corrupt but was rewritten from a redundant
    /// valid copy in a higher tier.
    Repaired,
    /// Every local copy was lost or corrupt, but the object was rebuilt
    /// bit-identically from its cross-rank redundancy group (partner copy
    /// or XOR parity) and re-stored on the PFS.
    RestoredFromGroup,
    /// A durable copy existed but was corrupt with no redundant copy.
    LostCorrupt,
    /// The object never became durable; surviving copies (if any) lived in
    /// volatile tiers. Includes staged-but-corrupt objects.
    LostVolatile,
}

impl ObjectStatus {
    pub fn name(&self) -> &'static str {
        match self {
            ObjectStatus::Verified => "verified",
            ObjectStatus::Repaired => "repaired",
            ObjectStatus::RestoredFromGroup => "restored_from_group",
            ObjectStatus::LostCorrupt => "lost_corrupt",
            ObjectStatus::LostVolatile => "lost_volatile",
        }
    }

    /// Whether the object is usable for restart after recovery.
    pub fn is_durable(&self) -> bool {
        matches!(
            self,
            ObjectStatus::Verified | ObjectStatus::Repaired | ObjectStatus::RestoredFromGroup
        )
    }
}

/// One object's recovery outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveredObject {
    pub ckpt_id: u32,
    pub status: ObjectStatus,
}

/// Recovery outcome for one rank: every known object's status plus the
/// newest usable chain (`base..base + prefix_len` all durable, in order).
#[derive(Debug, Clone)]
pub struct RankRecovery {
    pub rank: u32,
    /// All objects observed for this rank, sorted by checkpoint id.
    pub objects: Vec<RecoveredObject>,
    /// First checkpoint id of the usable chain. 0 unless chain compaction
    /// garbage-collected everything below a self-contained rebase record.
    pub base: u32,
    /// Length of the contiguous durable run starting at `base`.
    pub prefix_len: usize,
    /// Decoded (unframed) payloads of the usable chain, in order
    /// (`payloads[i]` is checkpoint `base + i`).
    pub payloads: Vec<Vec<u8>>,
}

impl RankRecovery {
    pub fn count(&self, status: ObjectStatus) -> usize {
        self.objects.iter().filter(|o| o.status == status).count()
    }
}

/// Aggregate recovery outcome across ranks, with per-status totals.
/// Replaces the old "silently return whatever prefix survived" contract:
/// callers can now distinguish verified, repaired and lost objects.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Per-rank outcomes, sorted by rank.
    pub ranks: Vec<RankRecovery>,
}

impl RecoveryReport {
    pub fn total(&self, status: ObjectStatus) -> usize {
        self.ranks.iter().map(|r| r.count(status)).sum()
    }

    pub fn total_verified(&self) -> usize {
        self.total(ObjectStatus::Verified)
    }

    pub fn total_repaired(&self) -> usize {
        self.total(ObjectStatus::Repaired)
    }

    /// Objects rebuilt from a cross-rank redundancy group.
    pub fn total_restored_from_group(&self) -> usize {
        self.total(ObjectStatus::RestoredFromGroup)
    }

    pub fn total_lost(&self) -> usize {
        self.total(ObjectStatus::LostCorrupt) + self.total(ObjectStatus::LostVolatile)
    }

    /// All objects across ranks, for reconciliation with counters.
    pub fn total_objects(&self) -> usize {
        self.ranks.iter().map(|r| r.objects.len()).sum()
    }

    /// Objects that are usable for restart (Σ durable prefix lengths).
    pub fn total_durable_prefix(&self) -> usize {
        self.ranks.iter().map(|r| r.prefix_len).sum()
    }

    /// The legacy recovery view: rank → durable prefix payloads.
    pub fn into_prefixes(self) -> HashMap<u32, Vec<Vec<u8>>> {
        self.ranks
            .into_iter()
            .map(|r| (r.rank, r.payloads))
            .collect()
    }

    /// JSON rendering (stable keys) for the `fault-matrix` CI artifact and
    /// `ckpt verify`-style reporting.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("total_objects").u64(self.total_objects() as u64);
        w.key("verified").u64(self.total_verified() as u64);
        w.key("repaired").u64(self.total_repaired() as u64);
        // Only clusters running a redundancy group can produce this
        // status; the key is omitted at zero so redundancy-off reports
        // stay byte-identical to the pre-redundancy schema.
        if self.total_restored_from_group() > 0 {
            w.key("restored_from_group")
                .u64(self.total_restored_from_group() as u64);
        }
        w.key("lost_corrupt")
            .u64(self.total(ObjectStatus::LostCorrupt) as u64);
        w.key("lost_volatile")
            .u64(self.total(ObjectStatus::LostVolatile) as u64);
        w.key("durable_prefix")
            .u64(self.total_durable_prefix() as u64);
        w.key("ranks").begin_array();
        for r in &self.ranks {
            w.begin_object();
            w.key("rank").u64(r.rank as u64);
            w.key("base").u64(r.base as u64);
            w.key("prefix_len").u64(r.prefix_len as u64);
            w.key("objects").begin_array();
            for o in &r.objects {
                w.begin_object();
                w.key("ckpt_id").u64(o.ckpt_id as u64);
                w.key("status").string(o.status.name());
                w.end_object();
            }
            w.end_array();
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }

    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_json(&mut w);
        w.finish()
    }
}

/// Group object ids by rank, each rank's ids sorted and de-duplicated.
pub(crate) fn group_by_rank(ids: impl IntoIterator<Item = ObjectId>) -> HashMap<u32, Vec<u32>> {
    let mut by_rank: HashMap<u32, Vec<u32>> = HashMap::new();
    for (rank, ckpt) in ids {
        by_rank.entry(rank).or_default().push(ckpt);
    }
    for ckpts in by_rank.values_mut() {
        ckpts.sort_unstable();
        ckpts.dedup();
    }
    by_rank
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_lazily_register() {
        let registry = Arc::new(Registry::new());
        let before = registry.snapshot_json();
        let c = IntegrityCounters::bound(Arc::clone(&registry));
        assert_eq!(c.verified_count(), 0);
        // Unused counters leave the registry untouched.
        assert_eq!(registry.snapshot_json(), before);
        c.on_verified();
        c.on_verified();
        c.on_corrupt();
        c.on_repaired();
        assert_eq!(c.verified_count(), 2);
        assert_eq!(c.corrupt_count(), 1);
        assert_eq!(c.repaired_count(), 1);
        assert_eq!(registry.counter("integrity/frames_verified").get(), 2);
        assert_eq!(registry.counter("integrity/frames_corrupt").get(), 1);
        assert_eq!(registry.counter("integrity/frames_repaired").get(), 1);
    }

    #[test]
    fn report_totals_and_json() {
        let report = RecoveryReport {
            ranks: vec![RankRecovery {
                rank: 2,
                objects: vec![
                    RecoveredObject {
                        ckpt_id: 0,
                        status: ObjectStatus::Verified,
                    },
                    RecoveredObject {
                        ckpt_id: 1,
                        status: ObjectStatus::Repaired,
                    },
                    RecoveredObject {
                        ckpt_id: 2,
                        status: ObjectStatus::LostVolatile,
                    },
                ],
                base: 0,
                prefix_len: 2,
                payloads: vec![vec![1], vec![2]],
            }],
        };
        assert_eq!(report.total_verified(), 1);
        assert_eq!(report.total_repaired(), 1);
        assert_eq!(report.total_lost(), 1);
        assert_eq!(report.total_objects(), 3);
        assert_eq!(report.total_durable_prefix(), 2);
        let json = report.to_json();
        for key in [
            "\"total_objects\":3",
            "\"verified\":1",
            "\"repaired\":1",
            "\"lost_volatile\":1",
            "\"prefix_len\":2",
            "\"status\":\"repaired\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let prefixes = report.into_prefixes();
        assert_eq!(prefixes[&2], vec![vec![1], vec![2]]);
    }

    #[test]
    fn grouping_sorts_and_dedups() {
        let grouped = group_by_rank([(1, 3), (0, 1), (1, 0), (1, 3), (0, 0)]);
        assert_eq!(grouped[&0], vec![0, 1]);
        assert_eq!(grouped[&1], vec![0, 3]);
    }
}
