//! The asynchronous multi-level checkpointing runtime (Fig. 3).
//!
//! Application processes hand their consolidated diffs to
//! [`AsyncRuntime::submit`]
//! (synchronous only up to the host-memory write — the application resumes
//! immediately, like VeloC's async mode) and a background flusher drains
//! host → SSD → PFS, evicting from the upper tier once the object is safe
//! one level down. A checkpoint is *durable* once it reaches the PFS.
//!
//! Failure injection for the restart tests: [`AsyncRuntime::kill`] abandons
//! the flusher mid-stream; [`AsyncRuntime::recover`] then reports, per rank,
//! the longest durable prefix of the record from which a restart can
//! proceed.

use crate::tier::{ObjectId, Tier, TierConfig, TierFull};
use ckpt_telemetry::{Counter, Gauge, Histogram, Registry};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The three-tier hierarchy under the GPU.
pub struct TierChain {
    pub host: Tier,
    pub ssd: Tier,
    pub pfs: Tier,
}

impl TierChain {
    pub fn new() -> Self {
        TierChain {
            host: Tier::new(TierConfig::host()),
            ssd: Tier::new(TierConfig::ssd()),
            pfs: Tier::new(TierConfig::pfs()),
        }
    }

    pub fn with_configs(host: TierConfig, ssd: TierConfig, pfs: TierConfig) -> Self {
        TierChain {
            host: Tier::new(host),
            ssd: Tier::new(ssd),
            pfs: Tier::new(pfs),
        }
    }

    /// Find an object in the deepest tier holding it (PFS preferred: it is
    /// the durable copy).
    pub fn locate(&self, id: ObjectId) -> Option<Vec<u8>> {
        self.pfs
            .get(id)
            .or_else(|| self.ssd.get(id))
            .or_else(|| self.host.get(id))
    }
}

impl Default for TierChain {
    fn default() -> Self {
        Self::new()
    }
}

enum Job {
    Flush(ObjectId),
    Shutdown,
}

/// Pre-resolved telemetry handles for the runtime's hot paths, shared
/// between producers and the flusher thread so neither ever touches the
/// registry lock after construction.
///
/// Metric inventory (all names are stable JSON keys):
///
/// | metric | kind | meaning |
/// |---|---|---|
/// | `runtime/submitted` | counter | checkpoints accepted into host staging |
/// | `runtime/durable` | counter | checkpoints that reached the PFS |
/// | `runtime/producer_stalls` | counter | blocking submissions that had to wait |
/// | `runtime/producer_stall_ns` | counter | total wall time producers spent stalled |
/// | `runtime/queue_depth` | gauge | flush jobs enqueued but not yet picked up |
/// | `runtime/durable_lag` | gauge | submitted minus durable (in-flight objects) |
/// | `tier/host/used_bytes` | gauge | host staging occupancy |
/// | `tier/host/evictions`, `tier/ssd/evictions` | counter | drains that freed the tier above |
/// | `tier/<t>/object_bytes` | histogram | object sizes written to tier `<t>` |
/// | `tier/ssd/flush_ns`, `tier/pfs/flush_ns` | histogram | per-hop flush latency |
struct RuntimeMetrics {
    registry: Arc<Registry>,
    submitted: Arc<Counter>,
    durable: Arc<Counter>,
    producer_stalls: Arc<Counter>,
    producer_stall_ns: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    durable_lag: Arc<Gauge>,
    host_used_bytes: Arc<Gauge>,
    host_evictions: Arc<Counter>,
    ssd_evictions: Arc<Counter>,
    host_object_bytes: Arc<Histogram>,
    ssd_object_bytes: Arc<Histogram>,
    pfs_object_bytes: Arc<Histogram>,
    ssd_flush_ns: Arc<Histogram>,
    pfs_flush_ns: Arc<Histogram>,
}

impl RuntimeMetrics {
    fn new(registry: Arc<Registry>) -> Self {
        RuntimeMetrics {
            submitted: registry.counter("runtime/submitted"),
            durable: registry.counter("runtime/durable"),
            producer_stalls: registry.counter("runtime/producer_stalls"),
            producer_stall_ns: registry.counter("runtime/producer_stall_ns"),
            queue_depth: registry.gauge("runtime/queue_depth"),
            durable_lag: registry.gauge("runtime/durable_lag"),
            host_used_bytes: registry.gauge("tier/host/used_bytes"),
            host_evictions: registry.counter("tier/host/evictions"),
            ssd_evictions: registry.counter("tier/ssd/evictions"),
            host_object_bytes: registry.histogram("tier/host/object_bytes"),
            ssd_object_bytes: registry.histogram("tier/ssd/object_bytes"),
            pfs_object_bytes: registry.histogram("tier/pfs/object_bytes"),
            ssd_flush_ns: registry.histogram("tier/ssd/flush_ns"),
            pfs_flush_ns: registry.histogram("tier/pfs/flush_ns"),
            registry,
        }
    }

    /// Book-keeping for one accepted submission of `len` bytes.
    fn on_submitted(&self, len: usize, host_used: u64) {
        self.submitted.inc();
        self.durable_lag.add(1);
        self.queue_depth.add(1);
        self.host_object_bytes.record(len as u64);
        self.host_used_bytes.set(host_used as i64);
    }
}

/// Asynchronous checkpoint flusher over a [`TierChain`].
pub struct AsyncRuntime {
    tiers: Arc<TierChain>,
    metrics: Arc<RuntimeMetrics>,
    tx: Sender<Job>,
    worker: Option<JoinHandle<()>>,
    killed: Arc<AtomicBool>,
    /// Signaled after the flusher evicts from the host tier, unblocking
    /// producers stalled in [`submit_blocking`](Self::submit_blocking).
    space_freed: Arc<(Mutex<u64>, Condvar)>,
}

impl AsyncRuntime {
    pub fn new() -> Self {
        Self::with_tiers(TierChain::new())
    }

    pub fn with_tiers(tiers: TierChain) -> Self {
        Self::with_tiers_throttled(tiers, 0.0)
    }

    /// A runtime whose flusher paces itself in *real* time to the tiers'
    /// modeled bandwidths, scaled by `time_scale` (e.g. `1e-3` makes one
    /// modeled second cost one real millisecond). With a non-zero scale,
    /// finite tier capacities produce genuine backpressure: producers that
    /// emit checkpoints faster than the chain drains will stall in
    /// [`submit_blocking`](Self::submit_blocking) — the §1 high-frequency
    /// limitation this runtime exists to study.
    pub fn with_tiers_throttled(tiers: TierChain, time_scale: f64) -> Self {
        Self::with_telemetry(tiers, time_scale, Arc::new(Registry::new()))
    }

    /// Like [`with_tiers_throttled`](Self::with_tiers_throttled), but
    /// recording metrics into a caller-provided registry (so several
    /// subsystems can share one report).
    pub fn with_telemetry(tiers: TierChain, time_scale: f64, registry: Arc<Registry>) -> Self {
        let tiers = Arc::new(tiers);
        let metrics = Arc::new(RuntimeMetrics::new(registry));
        let (tx, rx): (Sender<Job>, Receiver<Job>) = unbounded();
        let killed = Arc::new(AtomicBool::new(false));
        let space_freed: Arc<(Mutex<u64>, Condvar)> = Arc::new((Mutex::new(0), Condvar::new()));
        let worker = {
            let tiers = Arc::clone(&tiers);
            let killed = Arc::clone(&killed);
            let space_freed = Arc::clone(&space_freed);
            let m = Arc::clone(&metrics);
            std::thread::spawn(move || {
                let throttle = |bytes: usize, bw: f64| {
                    if time_scale > 0.0 {
                        let sec = bytes as f64 / bw * time_scale;
                        std::thread::sleep(Duration::from_secs_f64(sec));
                    }
                };
                for job in rx.iter() {
                    match job {
                        Job::Shutdown => break,
                        Job::Flush(id) => {
                            m.queue_depth.sub(1);
                            if killed.load(Ordering::Relaxed) {
                                // Simulated node failure: stop draining.
                                break;
                            }
                            // host → ssd → pfs, evicting behind ourselves.
                            if let Some(bytes) = tiers.host.get(id) {
                                let n = bytes.len();
                                let hop = Instant::now();
                                if tiers.ssd.put(id, bytes).is_ok() {
                                    throttle(n, tiers.ssd.config().bandwidth_bps);
                                    m.ssd_flush_ns.record_duration(hop.elapsed());
                                    m.ssd_object_bytes.record(n as u64);
                                    if tiers.host.evict(id) {
                                        m.host_evictions.inc();
                                    }
                                    m.host_used_bytes.set(tiers.host.used_bytes() as i64);
                                    let (gen, cv) = &*space_freed;
                                    *gen.lock() += 1;
                                    cv.notify_all();
                                }
                            }
                            if killed.load(Ordering::Relaxed) {
                                break;
                            }
                            if let Some(bytes) = tiers.ssd.get(id) {
                                let n = bytes.len();
                                let hop = Instant::now();
                                if tiers.pfs.put(id, bytes).is_ok() {
                                    throttle(n, tiers.pfs.config().bandwidth_bps);
                                    m.pfs_flush_ns.record_duration(hop.elapsed());
                                    m.pfs_object_bytes.record(n as u64);
                                    m.durable.inc();
                                    m.durable_lag.sub(1);
                                    if tiers.ssd.evict(id) {
                                        m.ssd_evictions.inc();
                                    }
                                }
                            }
                        }
                    }
                }
                // Unblock any stalled producers on exit.
                let (gen, cv) = &*space_freed;
                *gen.lock() += 1;
                cv.notify_all();
            })
        };
        AsyncRuntime {
            tiers,
            metrics,
            tx,
            worker: Some(worker),
            killed,
            space_freed,
        }
    }

    pub fn tiers(&self) -> &TierChain {
        &self.tiers
    }

    /// The registry this runtime records into; snapshot with
    /// [`Registry::snapshot_json`] for the `ckpt stats` report.
    pub fn telemetry(&self) -> &Arc<Registry> {
        &self.metrics.registry
    }

    /// Stage a checkpoint diff in host memory and schedule its background
    /// drain. Returns once the host write completes (the application's
    /// blocking time).
    pub fn submit(&self, rank: u32, ckpt_id: u32, bytes: Vec<u8>) -> Result<(), TierFull> {
        let id = (rank, ckpt_id);
        let len = bytes.len();
        self.tiers.host.put(id, bytes)?;
        self.metrics.on_submitted(len, self.tiers.host.used_bytes());
        // The send only fails after shutdown/kill; the object stays staged.
        let _ = self.tx.send(Job::Flush(id));
        Ok(())
    }

    /// Stage a checkpoint, blocking while the host tier is full — the
    /// application-visible stall of a producer outrunning the flusher (§1:
    /// "the HPC workflow may be delayed if it produces new checkpoints
    /// faster than they can be flushed to slower memory tiers").
    /// Returns the time spent stalled. Errors if the runtime died while
    /// waiting.
    pub fn submit_blocking(
        &self,
        rank: u32,
        ckpt_id: u32,
        mut bytes: Vec<u8>,
    ) -> Result<Duration, TierFull> {
        let start = Instant::now();
        let id = (rank, ckpt_id);
        let mut stalled = false;
        loop {
            let len = bytes.len();
            match self.tiers.host.try_put(id, bytes) {
                Ok(()) => {
                    self.metrics.on_submitted(len, self.tiers.host.used_bytes());
                    // Only submissions that found the host tier full count as
                    // stalls — an unthrottled chain must report exactly zero.
                    if stalled {
                        let waited = start.elapsed();
                        self.metrics.producer_stalls.inc();
                        self.metrics
                            .producer_stall_ns
                            .add(waited.as_nanos().min(u64::MAX as u128) as u64);
                    }
                    let _ = self.tx.send(Job::Flush(id));
                    return Ok(start.elapsed());
                }
                Err(returned) => {
                    stalled = true;
                    if self.killed.load(Ordering::Relaxed) {
                        return Err(TierFull {
                            tier: self.tiers.host.name(),
                        });
                    }
                    bytes = returned;
                    // Wait for the flusher to evict something (bounded nap to
                    // stay robust against missed wakeups).
                    let (gen, cv) = &*self.space_freed;
                    let mut g = gen.lock();
                    cv.wait_for(&mut g, Duration::from_millis(20));
                }
            }
        }
    }

    /// Block until every submitted checkpoint so far has drained to the PFS,
    /// then return. (Polling keeps the flusher honest about ordering.)
    pub fn wait_durable(&self, ids: &[ObjectId]) {
        loop {
            if ids.iter().all(|&id| self.tiers.pfs.contains(id)) {
                return;
            }
            if self.killed.load(Ordering::Relaxed) {
                return; // failure: durability will not progress further
            }
            std::thread::yield_now();
        }
    }

    /// Simulate a crash: the flusher stops mid-stream; staged objects above
    /// the PFS are lost (host/SSD contents are considered volatile).
    pub fn kill(&self) {
        self.killed.store(true, Ordering::Relaxed);
        let _ = self.tx.send(Job::Shutdown);
    }

    /// After a crash: the durable record per rank — the longest prefix
    /// `0..=k` of checkpoint ids fully present on the PFS. Restart must
    /// resume from these (later diffs may exist but are unusable without
    /// their predecessors).
    pub fn recover(&self) -> HashMap<u32, Vec<Vec<u8>>> {
        let mut by_rank: HashMap<u32, Vec<(u32, Vec<u8>)>> = HashMap::new();
        for id in self.tiers.pfs.resident() {
            if let Some(bytes) = self.tiers.pfs.get(id) {
                by_rank.entry(id.0).or_default().push((id.1, bytes));
            }
        }
        by_rank
            .into_iter()
            .map(|(rank, mut objs)| {
                objs.sort_unstable_by_key(|(ckpt, _)| *ckpt);
                let mut prefix = Vec::new();
                for (expect, (ckpt, bytes)) in objs.into_iter().enumerate() {
                    if ckpt as usize != expect {
                        break;
                    }
                    prefix.push(bytes);
                }
                (rank, prefix)
            })
            .collect()
    }

    /// Graceful shutdown: drain everything, then join the worker.
    pub fn shutdown(mut self) {
        let _ = self.tx.send(Job::Shutdown);
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}

impl Default for AsyncRuntime {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for AsyncRuntime {
    fn drop(&mut self) {
        let _ = self.tx.send(Job::Shutdown);
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_drains_to_pfs_and_evicts_above() {
        let rt = AsyncRuntime::new();
        rt.submit(0, 0, vec![1; 100]).unwrap();
        rt.submit(0, 1, vec![2; 100]).unwrap();
        rt.wait_durable(&[(0, 0), (0, 1)]);
        assert_eq!(rt.tiers().pfs.get((0, 0)), Some(vec![1; 100]));
        assert_eq!(rt.tiers().pfs.get((0, 1)), Some(vec![2; 100]));
        assert!(!rt.tiers().host.contains((0, 0)));
        assert!(!rt.tiers().ssd.contains((0, 0)));
        rt.shutdown();
    }

    #[test]
    fn locate_prefers_durable_copy() {
        let rt = AsyncRuntime::new();
        rt.submit(3, 0, vec![7; 10]).unwrap();
        rt.wait_durable(&[(3, 0)]);
        assert_eq!(rt.tiers().locate((3, 0)), Some(vec![7; 10]));
        assert_eq!(rt.tiers().locate((9, 9)), None);
    }

    #[test]
    fn modeled_time_accumulates_down_the_chain() {
        let rt = AsyncRuntime::new();
        rt.submit(0, 0, vec![0; 1 << 20]).unwrap();
        rt.wait_durable(&[(0, 0)]);
        assert!(rt.tiers().host.modeled_busy_sec() > 0.0);
        assert!(rt.tiers().ssd.modeled_busy_sec() > rt.tiers().pfs.modeled_busy_sec());
        rt.shutdown();
    }

    #[test]
    fn kill_then_recover_returns_durable_prefix() {
        let rt = AsyncRuntime::new();
        // Make several checkpoints durable, then crash and submit more.
        for k in 0..3 {
            rt.submit(0, k, vec![k as u8; 50]).unwrap();
        }
        rt.wait_durable(&[(0, 0), (0, 1), (0, 2)]);
        rt.kill();
        // Post-crash submissions stage to host but never become durable.
        rt.submit(0, 3, vec![9; 50]).unwrap();
        let rec = rt.recover();
        assert_eq!(rec[&0].len(), 3);
        assert_eq!(rec[&0][2], vec![2u8; 50]);
    }

    #[test]
    fn recover_stops_at_gaps() {
        // A rank whose ckpt 1 never landed: only ckpt 0 is usable.
        let rt = AsyncRuntime::new();
        rt.tiers().pfs.put((5, 0), vec![1]).unwrap();
        rt.tiers().pfs.put((5, 2), vec![3]).unwrap();
        let rec = rt.recover();
        assert_eq!(rec[&5], vec![vec![1u8]]);
    }

    #[test]
    fn backpressure_stalls_then_completes() {
        // Host tier holds two 100-byte checkpoints; the SSD drains at a
        // throttled pace, so a burst of 8 must stall the producer — and
        // every byte still lands durably.
        let tiers = TierChain::with_configs(
            TierConfig {
                name: "host",
                bandwidth_bps: 25.0e9,
                capacity: 220,
            },
            TierConfig {
                name: "ssd",
                bandwidth_bps: 1e6,
                capacity: u64::MAX,
            },
            TierConfig::pfs(),
        );
        // 100 bytes at 1 MB/s modeled = 0.1 ms real per hop at scale 1.0.
        let rt = AsyncRuntime::with_tiers_throttled(tiers, 1.0);
        let mut total_stall = Duration::ZERO;
        for k in 0..8u32 {
            total_stall += rt.submit_blocking(0, k, vec![k as u8; 100]).unwrap();
        }
        assert!(total_stall > Duration::ZERO, "burst must have stalled");
        let ids: Vec<_> = (0..8u32).map(|k| (0, k)).collect();
        rt.wait_durable(&ids);
        for &id in &ids {
            assert_eq!(rt.tiers().pfs.get(id), Some(vec![id.1 as u8; 100]));
        }
        rt.shutdown();
    }

    #[test]
    fn submit_blocking_without_pressure_is_instant() {
        let rt = AsyncRuntime::new();
        let stall = rt.submit_blocking(0, 0, vec![1; 64]).unwrap();
        assert!(stall < Duration::from_millis(50));
        rt.wait_durable(&[(0, 0)]);
    }

    #[test]
    fn submit_blocking_errors_after_kill() {
        let tiers = TierChain::with_configs(
            TierConfig {
                name: "host",
                bandwidth_bps: 25.0e9,
                capacity: 50,
            },
            TierConfig::ssd(),
            TierConfig::pfs(),
        );
        let rt = AsyncRuntime::with_tiers(tiers);
        // Kill first so the flusher deterministically never drains: ckpt 0
        // stays staged in host memory.
        rt.kill();
        rt.submit(0, 0, vec![0; 40]).unwrap();
        // The host is full and nothing will free it: must error, not spin.
        assert!(rt.submit_blocking(0, 1, vec![0; 40]).is_err());
    }

    #[test]
    fn telemetry_tracks_submissions_through_durability() {
        let rt = AsyncRuntime::new();
        for k in 0..3u32 {
            rt.submit(0, k, vec![k as u8; 4096]).unwrap();
        }
        rt.wait_durable(&[(0, 0), (0, 1), (0, 2)]);
        let reg = Arc::clone(rt.telemetry());
        rt.shutdown(); // joins the flusher: all metric updates are visible
        assert_eq!(reg.counter("runtime/submitted").get(), 3);
        assert_eq!(reg.counter("runtime/durable").get(), 3);
        assert_eq!(reg.gauge("runtime/durable_lag").get(), 0);
        assert_eq!(reg.gauge("runtime/queue_depth").get(), 0);
        assert_eq!(reg.counter("tier/host/evictions").get(), 3);
        assert_eq!(reg.counter("tier/ssd/evictions").get(), 3);
        assert_eq!(reg.gauge("tier/host/used_bytes").get(), 0);
        assert_eq!(reg.histogram("tier/host/object_bytes").snapshot().count, 3);
        assert_eq!(reg.histogram("tier/pfs/flush_ns").snapshot().count, 3);
        // Unthrottled fast-path submissions never stall.
        assert_eq!(reg.counter("runtime/producer_stalls").get(), 0);
        assert_eq!(reg.counter("runtime/producer_stall_ns").get(), 0);
    }

    #[test]
    fn many_ranks_interleaved() {
        let rt = AsyncRuntime::new();
        let mut ids = Vec::new();
        for rank in 0..8u32 {
            for k in 0..5u32 {
                rt.submit(rank, k, vec![rank as u8; 64]).unwrap();
                ids.push((rank, k));
            }
        }
        rt.wait_durable(&ids);
        for &id in &ids {
            assert!(rt.tiers().pfs.contains(id));
        }
        rt.shutdown();
    }
}
