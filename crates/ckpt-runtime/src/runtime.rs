//! The asynchronous multi-level checkpointing runtime (Fig. 3).
//!
//! Application processes hand their consolidated diffs to
//! [`AsyncRuntime::submit`]
//! (synchronous only up to the host-memory write — the application resumes
//! immediately, like VeloC's async mode) and a background flusher drains
//! host → SSD → PFS, evicting from the upper tier once the object is safe
//! one level down. A checkpoint is *durable* once it reaches the PFS.
//!
//! # Failure model
//!
//! Every stored object is integrity-framed (see [`crate::tier`]); the
//! drain loop verifies frames on read, retries transient tier errors with
//! bounded exponential backoff, and *degrades* past a tier that refuses an
//! object after retry exhaustion (host → PFS directly, skipping a failed
//! SSD). [`AsyncRuntime::kill`] simulates a node crash: it halts the
//! flusher and joins it, so when `kill` returns the tiers are in a
//! well-defined state (no write is ever half-applied; see the torn-write
//! contract on [`Tier::put`]). [`AsyncRuntime::recover`] /
//! [`TierChain::recover_report`] then enumerate, per rank, which objects
//! verified, which were repaired from a redundant copy, and which are lost
//! — instead of silently returning a partial chain.

use crate::compress::{CompressMetrics, CompressionEngine, CompressionPolicy};
use crate::fault::FaultPlan;
use crate::integrity::{
    group_by_rank, IntegrityCounters, ObjectStatus, RankRecovery, RecoveredObject, RecoveryReport,
};
use crate::rankdedup::{RankDedupEngine, RankDedupIndex};
use crate::redundancy::{RedundancyMetrics, RedundancyPolicy, RedundancyStore};
use crate::tier::{
    ObjectId, ObjectState, StoreErrorKind, StoredObject, Tier, TierConfig, TierFull,
};
use ckpt_telemetry::{Counter, Gauge, Histogram, Registry};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Max attempts for a tier write before the flusher gives up on that tier
/// (1 initial try + 3 retries).
const MAX_STORE_ATTEMPTS: u32 = 4;
/// Max attempts for a tier read (transient errors only).
const MAX_READ_ATTEMPTS: u32 = 3;
/// Base backoff between retries; doubles per attempt (50 µs, 100 µs, …) so
/// retry exhaustion stays well under a millisecond in tests.
const RETRY_BACKOFF: Duration = Duration::from_micros(50);

/// The three-tier hierarchy under the GPU.
pub struct TierChain {
    pub host: Tier,
    pub ssd: Tier,
    pub pfs: Tier,
    integrity: IntegrityCounters,
    /// Cross-rank redundancy level (`None` = the pre-redundancy chain,
    /// byte for byte).
    redundancy: Option<Arc<RedundancyStore>>,
    /// Cluster-wide dedup index (`None` = no rank-dedup resolution on the
    /// read path, byte for byte the pre-index chain).
    rank_dedup: Option<Arc<RankDedupIndex>>,
    /// Ranks named by fired `RankLoss` faults, wiped at the next
    /// deterministic poll point (flush start, locate, recovery).
    loss_sink: Arc<Mutex<Vec<u32>>>,
}

impl TierChain {
    pub fn new() -> Self {
        Self::with_configs(TierConfig::host(), TierConfig::ssd(), TierConfig::pfs())
    }

    fn assemble(host: Tier, ssd: Tier, pfs: Tier) -> Self {
        let loss_sink: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
        for tier in [&host, &ssd, &pfs] {
            tier.bind_loss_sink(Arc::clone(&loss_sink));
        }
        TierChain {
            host,
            ssd,
            pfs,
            integrity: IntegrityCounters::detached(),
            redundancy: None,
            rank_dedup: None,
            loss_sink,
        }
    }

    pub fn with_configs(host: TierConfig, ssd: TierConfig, pfs: TierConfig) -> Self {
        Self::assemble(Tier::new(host), Tier::new(ssd), Tier::new(pfs))
    }

    /// Default-configured chain whose tiers all consult `plan` (the
    /// fault-injection hook; specs are keyed by tier name).
    pub fn with_faults(plan: Arc<FaultPlan>) -> Self {
        Self::with_configs_and_faults(
            TierConfig::host(),
            TierConfig::ssd(),
            TierConfig::pfs(),
            plan,
        )
    }

    pub fn with_configs_and_faults(
        host: TierConfig,
        ssd: TierConfig,
        pfs: TierConfig,
        plan: Arc<FaultPlan>,
    ) -> Self {
        Self::assemble(
            Tier::with_faults(host, Arc::clone(&plan)),
            Tier::with_faults(ssd, Arc::clone(&plan)),
            Tier::with_faults(pfs, plan),
        )
    }

    /// Attach the cross-rank redundancy level. The group tier joins the
    /// chain's rank-loss sink so `RankLoss` faults scheduled against
    /// `"group"` are observed too.
    pub fn attach_redundancy(&mut self, store: Arc<RedundancyStore>) {
        store
            .group_tier()
            .bind_loss_sink(Arc::clone(&self.loss_sink));
        self.redundancy = Some(store);
    }

    /// The attached redundancy store, if any.
    pub fn redundancy(&self) -> Option<&Arc<RedundancyStore>> {
        self.redundancy.as_ref()
    }

    /// Attach the cluster-wide dedup index: the read path resolves
    /// `CKPR` records through it (and types dangling references).
    pub fn attach_rank_dedup(&mut self, index: Arc<RankDedupIndex>) {
        self.rank_dedup = Some(index);
    }

    /// The attached cluster dedup index, if any.
    pub fn rank_dedup_index(&self) -> Option<&Arc<RankDedupIndex>> {
        self.rank_dedup.as_ref()
    }

    /// Member ids the redundancy group knows about (empty without one) —
    /// recovery enumerates these so an object whose every local copy was
    /// wiped is still *seen*.
    pub fn redundancy_member_ids(&self) -> Vec<ObjectId> {
        self.redundancy
            .as_ref()
            .map(|r| r.member_ids())
            .unwrap_or_default()
    }

    /// Hand one post-compression object to the redundancy level (no-op
    /// without one; idempotent).
    pub(crate) fn encode_redundancy(&self, id: ObjectId, object: &StoredObject) {
        if let Some(red) = &self.redundancy {
            red.encode_member(id, object);
        }
    }

    /// Apply any pending `RankLoss` faults: wipe the lost ranks' volatile
    /// tiers (host, SSD — never the PFS) and the group objects they
    /// hosted. Returns the ids wiped from the volatile tiers (sorted) so
    /// the flusher can mark non-durable ones undrainable. Deterministic:
    /// losses are queued by the fault hook at exact op ordinals and applied
    /// here, at the chain's fixed poll points.
    pub fn poll_rank_loss(&self) -> Vec<ObjectId> {
        let pending: Vec<u32> = std::mem::take(&mut *self.loss_sink.lock());
        if pending.is_empty() {
            return Vec::new();
        }
        let mut seen = HashSet::new();
        let mut wiped = Vec::new();
        for rank in pending {
            if !seen.insert(rank) {
                continue;
            }
            wiped.extend(self.host.wipe_rank(rank));
            wiped.extend(self.ssd.wipe_rank(rank));
            if let Some(red) = &self.redundancy {
                red.apply_rank_loss(rank);
                red.metrics().on_rank_loss();
            }
        }
        wiped.sort_unstable();
        wiped.dedup();
        wiped
    }

    /// Rebuild an object from its redundancy group, re-storing the result
    /// on the PFS so later reads find it durably. Returns `None` without a
    /// group, for unknown members, and for failed rebuilds (counted).
    fn reconstruct_from_group(&self, id: ObjectId) -> Option<StoredObject> {
        let red = self.redundancy.as_ref()?;
        let fetch = |mid: ObjectId| -> Option<StoredObject> {
            for tier in [&self.pfs, &self.ssd, &self.host] {
                if let ObjectState::Valid(obj) = Self::inspect_object_retry(tier, mid) {
                    return Some(obj);
                }
            }
            None
        };
        match red.reconstruct(id, &fetch) {
            Ok(obj) => {
                red.metrics().on_restored();
                let _ = self.pfs.store_object(id, obj.clone());
                Some(obj)
            }
            Err(_) => {
                if red.knows_member(id) {
                    red.metrics().on_restore_failure();
                }
                None
            }
        }
    }

    /// Route integrity counters into `registry` (done by the runtime at
    /// construction so `integrity/frames_*` land in its report).
    pub fn bind_telemetry(&mut self, registry: Arc<Registry>) {
        self.integrity = IntegrityCounters::bound(registry);
    }

    /// Route decode-time accounting from every tier's transparent read
    /// path into the given compression metric sink.
    pub fn bind_compress_metrics(&self, metrics: &Arc<CompressMetrics>) {
        for tier in [&self.host, &self.ssd, &self.pfs] {
            tier.bind_compress_metrics(Arc::clone(metrics));
        }
    }

    /// Integrity counters for this chain (verified / corrupt / repaired).
    pub fn integrity(&self) -> &IntegrityCounters {
        &self.integrity
    }

    /// Read-and-verify (without decoding) with bounded retry of injected
    /// transient errors.
    fn inspect_object_retry(tier: &Tier, id: ObjectId) -> ObjectState {
        for attempt in 0..MAX_READ_ATTEMPTS {
            match tier.inspect_object(id) {
                ObjectState::TransientIo if attempt + 1 < MAX_READ_ATTEMPTS => {
                    std::thread::sleep(RETRY_BACKOFF * (1 << attempt));
                }
                state => return state,
            }
        }
        ObjectState::TransientIo
    }

    /// Find a *verified* copy of an object in the deepest tier holding one
    /// (PFS preferred: it is the durable copy). Copies whose frame fails
    /// verification — or whose compressed payload fails to decode — are
    /// skipped (a bit-flipped host copy can never shadow a good SSD copy),
    /// then quarantined, and transparently repaired from the surviving
    /// valid copy when one exists. Repairs re-store the *encoded* bytes,
    /// so a compressed object stays compressed (and its compressed-payload
    /// checksum is what the repaired copy re-verifies against).
    pub fn locate(&self, id: ObjectId) -> Option<Vec<u8>> {
        let bytes = self.locate_stored(id)?;
        self.resolve_if_rank_dedup(id, bytes)
    }

    /// `locate` minus rank-dedup resolution: the stored payload verbatim
    /// (a `CKPR` record when the object was submitted with rank-dedup on).
    /// Resolution fetches *referenced* records through this, so a remote
    /// chunk on a lost rank still reconstructs from its parity group — and
    /// resolution never recurses.
    fn locate_stored(&self, id: ObjectId) -> Option<Vec<u8>> {
        self.poll_rank_loss();
        let order = [&self.pfs, &self.ssd, &self.host];
        let mut decoded: Option<Vec<u8>> = None;
        let mut encoded: Option<StoredObject> = None;
        let mut corrupt: Vec<&Tier> = Vec::new();
        for tier in order {
            match Self::inspect_object_retry(tier, id) {
                ObjectState::Valid(obj) => {
                    if decoded.is_some() {
                        // A redundant valid copy; no need to decode it too.
                        self.integrity.on_verified();
                        continue;
                    }
                    match obj.clone().decode() {
                        Ok(p) => {
                            self.integrity.on_verified();
                            decoded = Some(p);
                            encoded = Some(obj);
                        }
                        Err(_) => {
                            self.integrity.on_corrupt();
                            tier.quarantine(id);
                            corrupt.push(tier);
                        }
                    }
                }
                ObjectState::Corrupt(_) => {
                    self.integrity.on_corrupt();
                    tier.quarantine(id);
                    corrupt.push(tier);
                }
                ObjectState::Missing | ObjectState::TransientIo => {}
            }
        }
        if decoded.is_none() {
            // Every local copy is gone or corrupt: last resort before the
            // caller sees a hole is a bit-identical rebuild from the
            // object's redundancy group.
            if let Some(obj) = self.reconstruct_from_group(id) {
                if let Ok(p) = obj.clone().decode() {
                    decoded = Some(p);
                    encoded = Some(obj);
                }
            }
        }
        if let Some(obj) = &encoded {
            for tier in corrupt {
                if tier.store_object(id, obj.clone()).is_ok() {
                    self.integrity.on_repaired();
                }
            }
        }
        decoded
    }

    /// Resolve a rank-dedup record back to the originally submitted
    /// payload; anything else passes through untouched. A reference that
    /// cannot be resolved — target gone from every tier *and* its group,
    /// or failing the recorded checksum — yields `None` (a typed hole),
    /// never a wrong payload.
    fn resolve_if_rank_dedup(&self, id: ObjectId, bytes: Vec<u8>) -> Option<Vec<u8>> {
        if !ckpt_dedup::frame::looks_rankdedup(&bytes) {
            return Some(bytes);
        }
        let t0 = Instant::now();
        let fetch = |target: ObjectId| self.locate_stored(target);
        let resolved = crate::rankdedup::resolve_record(id, &bytes, &fetch);
        if let Some(ix) = &self.rank_dedup {
            ix.metrics().on_fetch(t0.elapsed());
        }
        match resolved {
            Ok(payload) => Some(payload),
            Err(_) => {
                if let Some(ix) = &self.rank_dedup {
                    ix.metrics().on_orphans(1);
                }
                None
            }
        }
    }

    /// Classify one object for recovery; returns its status and, when
    /// durable, the verified (decoded) payload.
    fn recover_object(&self, id: ObjectId) -> (ObjectStatus, Option<Vec<u8>>) {
        let (status, payload) = self.recover_object_stored(id);
        match payload {
            Some(p) => match self.resolve_if_rank_dedup(id, p) {
                Some(resolved) => (status, Some(resolved)),
                // The record itself is durable but a cross-rank reference
                // dangles (referenced rank lost beyond its group's reach):
                // typed loss, never a wrong payload.
                None => (ObjectStatus::LostCorrupt, None),
            },
            None => (status, None),
        }
    }

    /// Tier/group classification of one object, pre-resolution.
    fn recover_object_stored(&self, id: ObjectId) -> (ObjectStatus, Option<Vec<u8>>) {
        match Self::inspect_object_retry(&self.pfs, id) {
            ObjectState::Valid(obj) => match obj.decode() {
                Ok(p) => {
                    self.integrity.on_verified();
                    (ObjectStatus::Verified, Some(p))
                }
                Err(_) => {
                    self.integrity.on_corrupt();
                    self.pfs.quarantine(id);
                    self.repair_pfs_from_upper(id)
                }
            },
            ObjectState::Corrupt(_) => {
                self.integrity.on_corrupt();
                self.pfs.quarantine(id);
                self.repair_pfs_from_upper(id)
            }
            ObjectState::Missing | ObjectState::TransientIo => {
                if let Some(p) = self.recover_from_group(id) {
                    return (ObjectStatus::RestoredFromGroup, Some(p));
                }
                if self.redundancy.as_ref().is_some_and(|r| r.knows_member(id)) {
                    // The group knew this object but could not rebuild it
                    // (e.g. two losses in one XOR group): typed loss, never
                    // a wrong payload.
                    (ObjectStatus::LostCorrupt, None)
                } else {
                    // Never durable: copies above the PFS are volatile.
                    (ObjectStatus::LostVolatile, None)
                }
            }
        }
    }

    /// Group-rebuild step of recovery: returns the decoded payload when
    /// the redundancy group reconstructed the object bit-identically.
    fn recover_from_group(&self, id: ObjectId) -> Option<Vec<u8>> {
        let obj = self.reconstruct_from_group(id)?;
        obj.decode().ok()
    }

    /// Repair the durable copy from a redundant valid copy in a higher
    /// tier, moving the encoded bytes verbatim (no transcode). When no
    /// local tier holds a usable copy, the object's redundancy group is
    /// the final source before declaring it lost.
    fn repair_pfs_from_upper(&self, id: ObjectId) -> (ObjectStatus, Option<Vec<u8>>) {
        for tier in [&self.ssd, &self.host] {
            if let ObjectState::Valid(obj) = Self::inspect_object_retry(tier, id) {
                if let Ok(p) = obj.clone().decode() {
                    self.integrity.on_verified();
                    if self.pfs.store_object(id, obj).is_ok() {
                        self.integrity.on_repaired();
                        return (ObjectStatus::Repaired, Some(p));
                    }
                }
            }
        }
        if let Some(p) = self.recover_from_group(id) {
            return (ObjectStatus::RestoredFromGroup, Some(p));
        }
        (ObjectStatus::LostCorrupt, None)
    }

    /// Post-crash recovery with full accounting: every object known to any
    /// tier (including quarantined ones) is classified as verified,
    /// repaired, or lost, and each rank's contiguous durable prefix is
    /// extracted. See [`RecoveryReport`].
    pub fn recover_report(&self) -> RecoveryReport {
        self.poll_rank_loss();
        let mut ids: Vec<ObjectId> = Vec::new();
        for tier in [&self.pfs, &self.ssd, &self.host] {
            ids.extend(tier.resident());
            ids.extend(tier.quarantined());
        }
        // Objects whose every local copy a rank loss wiped are invisible
        // to the tier scan; the group's member table still names them, so
        // cluster-scope recovery classifies them too (restored or typed
        // lost — never silently absent).
        ids.extend(self.redundancy_member_ids());
        let by_rank = group_by_rank(ids);
        let mut ranks: Vec<RankRecovery> = by_rank
            .into_iter()
            .map(|(rank, ckpts)| {
                let mut objects = Vec::with_capacity(ckpts.len());
                let mut durable: BTreeMap<u32, Vec<u8>> = BTreeMap::new();
                for ckpt_id in ckpts {
                    let (status, payload) = self.recover_object((rank, ckpt_id));
                    if status.is_durable() {
                        durable.insert(ckpt_id, payload.expect("durable object carries payload"));
                    }
                    objects.push(RecoveredObject { ckpt_id, status });
                }
                let (base, payloads) = usable_chain(&mut durable);
                RankRecovery {
                    rank,
                    objects,
                    base,
                    prefix_len: payloads.len(),
                    payloads,
                }
            })
            .collect();
        ranks.sort_by_key(|r| r.rank);
        RecoveryReport { ranks }
    }
}

/// The newest restorable chain among a rank's durable objects: the
/// contiguous run with the greatest top id whose first record either is
/// checkpoint 0 or is structurally self-contained (a rebase record, the
/// legal chain head after compaction garbage-collected its predecessors).
/// An incremental run stranded above a hole is skipped in favor of an
/// older replayable run; with none, the chain is empty.
fn usable_chain(durable: &mut BTreeMap<u32, Vec<u8>>) -> (u32, Vec<Vec<u8>>) {
    let ids: Vec<u32> = durable.keys().copied().collect();
    // Contiguous runs, newest first.
    let mut runs: Vec<(u32, u32)> = Vec::new();
    for &id in &ids {
        match runs.last_mut() {
            Some((_, hi)) if *hi + 1 == id => *hi = id,
            _ => runs.push((id, id)),
        }
    }
    for &(lo, hi) in runs.iter().rev() {
        // A run reaching checkpoint 0 replays whole; otherwise it replays
        // from its lowest self-contained rebase record, if any.
        let head = if lo == 0 {
            Some(0)
        } else {
            (lo..=hi).find(|k| {
                ckpt_dedup::Diff::decode(&durable[k])
                    .map(|d| ckpt_dedup::is_self_contained(&d))
                    .unwrap_or(false)
            })
        };
        if let Some(head) = head {
            let payloads = (head..=hi).map(|k| durable.remove(&k).unwrap()).collect();
            return (head, payloads);
        }
    }
    (0, Vec::new())
}

impl Default for TierChain {
    fn default() -> Self {
        Self::new()
    }
}

enum Job {
    Flush(ObjectId),
    Shutdown,
}

/// Pre-resolved telemetry handles for the runtime's hot paths, shared
/// between producers and the flusher thread so neither ever touches the
/// registry lock after construction.
///
/// Metric inventory (all names are stable JSON keys):
///
/// | metric | kind | meaning |
/// |---|---|---|
/// | `runtime/submitted` | counter | checkpoints accepted into host staging |
/// | `runtime/durable` | counter | checkpoints that reached the PFS |
/// | `runtime/producer_stalls` | counter | blocking submissions that had to wait |
/// | `runtime/producer_stall_ns` | counter | total wall time producers spent stalled |
/// | `runtime/retries` | counter | flusher retries after transient tier errors (lazy) |
/// | `runtime/degraded_flushes` | counter | flushes that skipped a failed tier (lazy) |
/// | `runtime/queue_depth` | gauge | flush jobs enqueued but not yet picked up |
/// | `runtime/durable_lag` | gauge | submitted minus durable (in-flight objects) |
/// | `tier/host/used_bytes` | gauge | host staging occupancy |
/// | `tier/host/evictions`, `tier/ssd/evictions` | counter | drains that freed the tier above |
/// | `tier/<t>/object_bytes` | histogram | *payload* sizes written to tier `<t>` (pre-frame, pre-compression) |
/// | `tier/ssd/flush_ns`, `tier/pfs/flush_ns` | histogram | per-hop flush latency |
/// | `compress/*` | mixed | see [`crate::compress`] (lazy) |
/// | `integrity/frames_*` | counter | see [`crate::integrity`] (lazy) |
/// | `restore/chains_restored` | counter | parallel restarts completed (lazy) |
/// | `restore/records_read` | counter | encoded diffs fetched by restart walks (lazy) |
/// | `restore/bytes_read` | counter | encoded bytes fetched by restart walks (lazy) |
/// | `restore/regions_copied` | counter | copy regions materialized by restarts (lazy) |
/// | `restore/bytes_copied` | counter | payload bytes gathered by restarts (lazy) |
/// | `restore/fetch_wait_ns` | counter | restart time blocked on tier prefetch (lazy) |
///
/// Lazy counters only register on their first event so fault-free runs
/// export exactly the pre-existing metric schema.
struct RuntimeMetrics {
    registry: Arc<Registry>,
    submitted: Arc<Counter>,
    durable: Arc<Counter>,
    producer_stalls: Arc<Counter>,
    producer_stall_ns: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    durable_lag: Arc<Gauge>,
    host_used_bytes: Arc<Gauge>,
    host_evictions: Arc<Counter>,
    ssd_evictions: Arc<Counter>,
    host_object_bytes: Arc<Histogram>,
    ssd_object_bytes: Arc<Histogram>,
    pfs_object_bytes: Arc<Histogram>,
    ssd_flush_ns: Arc<Histogram>,
    pfs_flush_ns: Arc<Histogram>,
    retries: OnceLock<Arc<Counter>>,
    degraded_flushes: OnceLock<Arc<Counter>>,
}

impl RuntimeMetrics {
    fn new(registry: Arc<Registry>) -> Self {
        RuntimeMetrics {
            submitted: registry.counter("runtime/submitted"),
            durable: registry.counter("runtime/durable"),
            producer_stalls: registry.counter("runtime/producer_stalls"),
            producer_stall_ns: registry.counter("runtime/producer_stall_ns"),
            queue_depth: registry.gauge("runtime/queue_depth"),
            durable_lag: registry.gauge("runtime/durable_lag"),
            host_used_bytes: registry.gauge("tier/host/used_bytes"),
            host_evictions: registry.counter("tier/host/evictions"),
            ssd_evictions: registry.counter("tier/ssd/evictions"),
            host_object_bytes: registry.histogram("tier/host/object_bytes"),
            ssd_object_bytes: registry.histogram("tier/ssd/object_bytes"),
            pfs_object_bytes: registry.histogram("tier/pfs/object_bytes"),
            ssd_flush_ns: registry.histogram("tier/ssd/flush_ns"),
            pfs_flush_ns: registry.histogram("tier/pfs/flush_ns"),
            retries: OnceLock::new(),
            degraded_flushes: OnceLock::new(),
            registry,
        }
    }

    /// Book-keeping for one accepted submission of `len` bytes.
    fn on_submitted(&self, len: usize, host_used: u64) {
        self.submitted.inc();
        self.durable_lag.add(1);
        self.queue_depth.add(1);
        self.host_object_bytes.record(len as u64);
        self.host_used_bytes.set(host_used as i64);
    }

    fn on_retry(&self) {
        self.retries
            .get_or_init(|| self.registry.counter("runtime/retries"))
            .inc();
    }

    fn on_degraded_flush(&self) {
        self.degraded_flushes
            .get_or_init(|| self.registry.counter("runtime/degraded_flushes"))
            .inc();
    }
}

/// The flusher thread's working set.
struct Flusher {
    tiers: Arc<TierChain>,
    m: Arc<RuntimeMetrics>,
    /// Post-dedup compression stage: raw staged payloads are encoded here,
    /// on the shared pool, before their first hop off the host tier — off
    /// the producer's critical path.
    engine: CompressionEngine,
    killed: Arc<AtomicBool>,
    space_freed: Arc<(Mutex<u64>, Condvar)>,
    /// Objects the flusher has given up on (never durable without outside
    /// help); lets `wait_durable` terminate instead of spinning forever.
    undrainable: Arc<Mutex<HashSet<ObjectId>>>,
    time_scale: f64,
}

impl Flusher {
    fn throttle(&self, bytes: u64, bw: f64) {
        if self.time_scale > 0.0 {
            let sec = bytes as f64 / bw * self.time_scale;
            std::thread::sleep(Duration::from_secs_f64(sec));
        }
    }

    /// Write with bounded retry + exponential backoff for transient
    /// errors. A full tier fails fast (retrying cannot free space — the
    /// caller degrades instead). Returns the object on failure, encoded
    /// exactly as handed in, so no retry or degradation ever re-encodes.
    fn store_object_with_retry(
        &self,
        tier: &Tier,
        id: ObjectId,
        object: StoredObject,
    ) -> Result<(), StoredObject> {
        let mut object = object;
        for attempt in 0..MAX_STORE_ATTEMPTS {
            match tier.store_object(id, object) {
                Ok(()) => return Ok(()),
                Err(e) => {
                    if e.kind == StoreErrorKind::Full || attempt + 1 == MAX_STORE_ATTEMPTS {
                        return Err(e.object);
                    }
                    self.m.on_retry();
                    std::thread::sleep(RETRY_BACKOFF * (1 << attempt));
                    object = e.object;
                }
            }
        }
        unreachable!("loop returns on last attempt")
    }

    /// Read (without decoding) with bounded retry of transient errors,
    /// counting retries.
    fn read_object_with_retry(&self, tier: &Tier, id: ObjectId) -> ObjectState {
        for attempt in 0..MAX_READ_ATTEMPTS {
            match tier.inspect_object(id) {
                ObjectState::TransientIo if attempt + 1 < MAX_READ_ATTEMPTS => {
                    self.m.on_retry();
                    std::thread::sleep(RETRY_BACKOFF * (1 << attempt));
                }
                state => return state,
            }
        }
        ObjectState::TransientIo
    }

    /// Evict the host copy once the object is safe below, then wake any
    /// producers stalled on host capacity.
    fn free_host(&self, id: ObjectId) {
        if self.tiers.host.evict(id) {
            self.m.host_evictions.inc();
        }
        self.m
            .host_used_bytes
            .set(self.tiers.host.used_bytes() as i64);
        let (gen, cv) = &*self.space_freed;
        *gen.lock() += 1;
        cv.notify_all();
    }

    fn mark_undrainable(&self, id: ObjectId) {
        self.undrainable.lock().insert(id);
    }

    fn on_durable(&self) {
        self.m.durable.inc();
        self.m.durable_lag.sub(1);
    }

    /// Drain one object host → SSD → PFS, with retry, degradation and
    /// integrity handling at every hop.
    ///
    /// Compression happens exactly once, on the first hop off the host
    /// tier: the staged raw payload is encoded per the policy, and from
    /// then on the encoded object moves verbatim (hop 2 and degraded
    /// paths never transcode). Throttling and tier accounting charge the
    /// encoded size — what actually crosses the link — while
    /// `tier/<t>/object_bytes` records the original payload size so size
    /// distributions stay comparable across compression policies.
    fn flush(&self, id: ObjectId) {
        let t = &self.tiers;
        // Apply any rank loss queued by the fault hook before touching the
        // tiers; in-flight objects the wipe took (and that never reached
        // the PFS) can only come back via their redundancy group at
        // recovery, so `wait_durable` must not spin on them.
        for wiped in t.poll_rank_loss() {
            if !t.pfs.contains(wiped) {
                self.mark_undrainable(wiped);
            }
        }
        // Hop 1: host → SSD, degrading host → PFS if the SSD refuses the
        // object after retry exhaustion (full or persistently erroring).
        match self.read_object_with_retry(&t.host, id) {
            ObjectState::Valid(staged) => {
                // Host staging holds raw objects; anything already encoded
                // (a re-flush of a repaired copy) passes through untouched.
                let object = if staged.codec == 0 {
                    self.engine.encode(staged.payload)
                } else {
                    staged
                };
                // Redundancy-encode the framed (post-compression) object
                // across its parity group, off the producer's critical
                // path and overlapped with the drain — idempotent, so a
                // degraded re-flush never double-XORs.
                t.encode_redundancy(id, &object);
                let raw_len = object.uncompressed_len;
                let wire_len = object.stored_len();
                let hop = Instant::now();
                match self.store_object_with_retry(&t.ssd, id, object) {
                    Ok(()) => {
                        self.throttle(wire_len, t.ssd.config().bandwidth_bps);
                        self.m.ssd_flush_ns.record_duration(hop.elapsed());
                        self.m.ssd_object_bytes.record(raw_len);
                        self.free_host(id);
                    }
                    Err(object) => {
                        self.m.on_degraded_flush();
                        let hop = Instant::now();
                        match self.store_object_with_retry(&t.pfs, id, object) {
                            Ok(()) => {
                                self.throttle(wire_len, t.pfs.config().bandwidth_bps);
                                self.m.pfs_flush_ns.record_duration(hop.elapsed());
                                self.m.pfs_object_bytes.record(raw_len);
                                self.on_durable();
                                self.free_host(id);
                            }
                            Err(_) => self.mark_undrainable(id),
                        }
                        return; // degraded objects skip the SSD hop
                    }
                }
            }
            ObjectState::Corrupt(_) => {
                // A corrupt staged copy can never drain; only a deeper copy
                // can still make this object durable.
                t.integrity.on_corrupt();
                t.host.quarantine(id);
                if !t.ssd.contains(id) && !t.pfs.contains(id) {
                    self.mark_undrainable(id);
                    return;
                }
            }
            ObjectState::TransientIo => {
                if !t.ssd.contains(id) && !t.pfs.contains(id) {
                    self.mark_undrainable(id);
                    return;
                }
            }
            ObjectState::Missing => {}
        }
        if self.killed.load(Ordering::Relaxed) {
            return;
        }
        // Hop 2: SSD → PFS. The encoded object moves verbatim.
        match self.read_object_with_retry(&t.ssd, id) {
            ObjectState::Valid(object) => {
                let raw_len = object.uncompressed_len;
                let wire_len = object.stored_len();
                let hop = Instant::now();
                match self.store_object_with_retry(&t.pfs, id, object) {
                    Ok(()) => {
                        self.throttle(wire_len, t.pfs.config().bandwidth_bps);
                        self.m.pfs_flush_ns.record_duration(hop.elapsed());
                        self.m.pfs_object_bytes.record(raw_len);
                        self.on_durable();
                        if t.ssd.evict(id) {
                            self.m.ssd_evictions.inc();
                        }
                    }
                    Err(_) => self.mark_undrainable(id),
                }
            }
            ObjectState::Corrupt(_) => {
                t.integrity.on_corrupt();
                t.ssd.quarantine(id);
                if !t.pfs.contains(id) {
                    self.mark_undrainable(id);
                }
            }
            ObjectState::TransientIo => {
                if !t.pfs.contains(id) {
                    self.mark_undrainable(id);
                }
            }
            ObjectState::Missing => {}
        }
    }

    fn run(&self, rx: Receiver<Job>) {
        for job in rx.iter() {
            match job {
                Job::Shutdown => break,
                Job::Flush(id) => {
                    self.m.queue_depth.sub(1);
                    if self.killed.load(Ordering::Relaxed) {
                        // Simulated node failure: stop draining.
                        break;
                    }
                    self.flush(id);
                }
            }
        }
        // Unblock any stalled producers on exit.
        let (gen, cv) = &*self.space_freed;
        *gen.lock() += 1;
        cv.notify_all();
    }
}

/// Asynchronous checkpoint flusher over a [`TierChain`].
pub struct AsyncRuntime {
    tiers: Arc<TierChain>,
    metrics: Arc<RuntimeMetrics>,
    tx: Sender<Job>,
    worker: Mutex<Option<JoinHandle<()>>>,
    killed: Arc<AtomicBool>,
    /// Signaled after the flusher evicts from the host tier, unblocking
    /// producers stalled in [`submit_blocking`](Self::submit_blocking).
    space_freed: Arc<(Mutex<u64>, Condvar)>,
    undrainable: Arc<Mutex<HashSet<ObjectId>>>,
    /// Cluster-wide dedup engine; when set, every submission is rewritten
    /// against the shared index before it is staged.
    rank_dedup: Option<Arc<RankDedupEngine>>,
}

impl AsyncRuntime {
    pub fn new() -> Self {
        Self::with_tiers(TierChain::new())
    }

    pub fn with_tiers(tiers: TierChain) -> Self {
        Self::with_tiers_throttled(tiers, 0.0)
    }

    /// A runtime whose flusher paces itself in *real* time to the tiers'
    /// modeled bandwidths, scaled by `time_scale` (e.g. `1e-3` makes one
    /// modeled second cost one real millisecond). With a non-zero scale,
    /// finite tier capacities produce genuine backpressure: producers that
    /// emit checkpoints faster than the chain drains will stall in
    /// [`submit_blocking`](Self::submit_blocking) — the §1 high-frequency
    /// limitation this runtime exists to study.
    pub fn with_tiers_throttled(tiers: TierChain, time_scale: f64) -> Self {
        Self::with_telemetry(tiers, time_scale, Arc::new(Registry::new()))
    }

    /// Like [`with_tiers_throttled`](Self::with_tiers_throttled), but
    /// recording metrics into a caller-provided registry (so several
    /// subsystems can share one report).
    pub fn with_telemetry(tiers: TierChain, time_scale: f64, registry: Arc<Registry>) -> Self {
        Self::with_compression(tiers, time_scale, registry, CompressionPolicy::Off)
    }

    /// The full constructor: a throttled, telemetry-bound runtime whose
    /// flusher compresses every object per `policy` on its first hop off
    /// the host tier. `CompressionPolicy::Off` reproduces the
    /// pre-compression runtime byte for byte (and, thanks to lazy
    /// `compress/*` metrics, report for report).
    pub fn with_compression(
        mut tiers: TierChain,
        time_scale: f64,
        registry: Arc<Registry>,
        policy: CompressionPolicy,
    ) -> Self {
        tiers.bind_telemetry(Arc::clone(&registry));
        let cmetrics = Arc::new(CompressMetrics::bound(Arc::clone(&registry)));
        tiers.bind_compress_metrics(&cmetrics);
        let tiers = Arc::new(tiers);
        let metrics = Arc::new(RuntimeMetrics::new(registry));
        let (tx, rx): (Sender<Job>, Receiver<Job>) = unbounded();
        let killed = Arc::new(AtomicBool::new(false));
        let space_freed: Arc<(Mutex<u64>, Condvar)> = Arc::new((Mutex::new(0), Condvar::new()));
        let undrainable: Arc<Mutex<HashSet<ObjectId>>> = Arc::new(Mutex::new(HashSet::new()));
        let flusher = Flusher {
            tiers: Arc::clone(&tiers),
            m: Arc::clone(&metrics),
            engine: CompressionEngine::new(policy, cmetrics),
            killed: Arc::clone(&killed),
            space_freed: Arc::clone(&space_freed),
            undrainable: Arc::clone(&undrainable),
            time_scale,
        };
        let worker = std::thread::spawn(move || flusher.run(rx));
        AsyncRuntime {
            tiers,
            metrics,
            tx,
            worker: Mutex::new(Some(worker)),
            killed,
            space_freed,
            undrainable,
            rank_dedup: None,
        }
    }

    /// The fullest constructor: [`with_compression`](Self::with_compression)
    /// plus a cross-rank redundancy group. With
    /// [`RedundancyPolicy::Off`] this delegates directly — no store is
    /// attached, no `redundancy/*` metric registers, and the runtime is
    /// the pre-redundancy one byte for byte.
    pub fn with_redundancy(
        mut tiers: TierChain,
        time_scale: f64,
        registry: Arc<Registry>,
        policy: CompressionPolicy,
        redundancy: RedundancyPolicy,
    ) -> Self {
        if redundancy != RedundancyPolicy::Off {
            let store = Arc::new(RedundancyStore::new(
                redundancy,
                RedundancyMetrics::bound(Arc::clone(&registry)),
            ));
            tiers.attach_redundancy(store);
        }
        Self::with_compression(tiers, time_scale, registry, policy)
    }

    /// [`with_redundancy`](Self::with_redundancy) plus the cluster-wide
    /// dedup engine. The engine is shared: every rank's runtime in a group
    /// holds the same `Arc` (one index, one claim exchange). With `None`
    /// this delegates directly — no index attaches, no `rankdedup/*`
    /// metric registers, and the runtime is the per-rank one byte for
    /// byte.
    pub fn with_rank_dedup(
        mut tiers: TierChain,
        time_scale: f64,
        registry: Arc<Registry>,
        policy: CompressionPolicy,
        redundancy: RedundancyPolicy,
        engine: Option<Arc<RankDedupEngine>>,
    ) -> Self {
        if let Some(e) = &engine {
            tiers.attach_rank_dedup(Arc::clone(e.index()));
        }
        let mut rt = Self::with_redundancy(tiers, time_scale, registry, policy, redundancy);
        rt.rank_dedup = engine;
        rt
    }

    /// The shared cluster dedup engine, if any.
    pub fn rank_dedup(&self) -> Option<&Arc<RankDedupEngine>> {
        self.rank_dedup.as_ref()
    }

    pub fn tiers(&self) -> &TierChain {
        &self.tiers
    }

    /// The registry this runtime records into; snapshot with
    /// [`Registry::snapshot_json`] for the `ckpt stats` report.
    pub fn telemetry(&self) -> &Arc<Registry> {
        &self.metrics.registry
    }

    /// Objects the flusher has given up on (corrupt with no redundant
    /// copy, or every lower tier refused them through retries and
    /// degradation). Sorted for deterministic assertions.
    pub fn undrainable(&self) -> Vec<ObjectId> {
        let mut ids: Vec<ObjectId> = self.undrainable.lock().iter().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Stage a checkpoint diff in host memory and schedule its background
    /// drain. Returns once the host write completes (the application's
    /// blocking time).
    pub fn submit(&self, rank: u32, ckpt_id: u32, bytes: Vec<u8>) -> Result<(), TierFull> {
        let id = (rank, ckpt_id);
        let bytes = self.dedup_transform(id, bytes);
        let len = bytes.len();
        self.tiers.host.put(id, bytes)?;
        self.metrics.on_submitted(len, self.tiers.host.used_bytes());
        // The send only fails after shutdown/kill; the object stays staged.
        let _ = self.tx.send(Job::Flush(id));
        Ok(())
    }

    /// Stage a checkpoint, blocking while the host tier is full — the
    /// application-visible stall of a producer outrunning the flusher (§1:
    /// "the HPC workflow may be delayed if it produces new checkpoints
    /// faster than they can be flushed to slower memory tiers").
    /// Returns the time spent stalled. Errors if the runtime died while
    /// waiting.
    pub fn submit_blocking(
        &self,
        rank: u32,
        ckpt_id: u32,
        bytes: Vec<u8>,
    ) -> Result<Duration, TierFull> {
        let start = Instant::now();
        let id = (rank, ckpt_id);
        let mut bytes = self.dedup_transform(id, bytes);
        let mut stalled = false;
        loop {
            let len = bytes.len();
            match self.tiers.host.try_put(id, bytes) {
                Ok(()) => {
                    self.metrics.on_submitted(len, self.tiers.host.used_bytes());
                    // Only submissions that found the host tier full count as
                    // stalls — an unthrottled chain must report exactly zero.
                    if stalled {
                        let waited = start.elapsed();
                        self.metrics.producer_stalls.inc();
                        self.metrics
                            .producer_stall_ns
                            .add(waited.as_nanos().min(u64::MAX as u128) as u64);
                    }
                    let _ = self.tx.send(Job::Flush(id));
                    return Ok(start.elapsed());
                }
                Err(returned) => {
                    stalled = true;
                    if self.killed.load(Ordering::Relaxed) {
                        return Err(TierFull {
                            tier: self.tiers.host.name(),
                        });
                    }
                    bytes = returned;
                    // Wait for the flusher to evict something (bounded nap to
                    // stay robust against missed wakeups).
                    let (gen, cv) = &*self.space_freed;
                    let mut g = gen.lock();
                    cv.wait_for(&mut g, Duration::from_millis(20));
                }
            }
        }
    }

    /// Block until every given checkpoint has either drained to the PFS or
    /// been abandoned by the flusher (see [`undrainable`](Self::undrainable)),
    /// then return. (Polling keeps the flusher honest about ordering.)
    pub fn wait_durable(&self, ids: &[ObjectId]) {
        loop {
            let settled = {
                let undrainable = self.undrainable.lock();
                ids.iter()
                    .all(|id| self.tiers.pfs.contains(*id) || undrainable.contains(id))
            };
            if settled {
                return;
            }
            if self.killed.load(Ordering::Relaxed) {
                return; // failure: durability will not progress further
            }
            std::thread::yield_now();
        }
    }

    /// Block until every given checkpoint's redundancy encoding is
    /// durable in the group tier (or the object was abandoned, or the
    /// runtime killed). Immediate without a redundancy group. GC calls
    /// this before `compact_below` so a rebase record's group encoding is
    /// never outrun by the eviction of the history it replaces.
    pub fn wait_redundancy_durable(&self, ids: &[ObjectId]) {
        let Some(red) = self.tiers.redundancy() else {
            return;
        };
        loop {
            let settled = {
                let undrainable = self.undrainable.lock();
                ids.iter()
                    .all(|id| red.is_encoded(*id) || undrainable.contains(id))
            };
            if settled {
                return;
            }
            if self.killed.load(Ordering::Relaxed) {
                return;
            }
            std::thread::yield_now();
        }
    }

    fn join_worker(&self) {
        let handle = self.worker.lock().take();
        if let Some(w) = handle {
            let _ = w.join();
        }
    }

    /// Simulate a crash: the flusher stops mid-stream; staged objects above
    /// the PFS are lost (host/SSD contents are considered volatile).
    ///
    /// `kill` *joins* the flusher before returning, so afterwards the tiers
    /// are in a well-defined state: no further mutations happen, and since
    /// every tier write is atomic (the torn-write contract on
    /// [`Tier::put`]), each object is either fully present in a tier or
    /// absent — any partial frame observed later was injected by a
    /// [`FaultPlan`], never left by a half-applied `try_put`.
    pub fn kill(&self) {
        self.killed.store(true, Ordering::Relaxed);
        let _ = self.tx.send(Job::Shutdown);
        self.join_worker();
        // The crash takes the claim-exchange stage with it: queued claims
        // are dropped as typed orphans, never committed past this point.
        if let Some(e) = &self.rank_dedup {
            e.kill();
        }
    }

    /// Rewrite a submission against the cluster dedup index (identity
    /// without an engine).
    fn dedup_transform(&self, id: ObjectId, bytes: Vec<u8>) -> Vec<u8> {
        match &self.rank_dedup {
            Some(e) => e.encode(id, bytes),
            None => bytes,
        }
    }

    /// After a crash: the durable record per rank — the longest prefix
    /// `0..=k` of checkpoint ids fully present (and verified) on the PFS.
    /// Restart must resume from these (later diffs may exist but are
    /// unusable without their predecessors). See
    /// [`recover_report`](Self::recover_report) for per-object accounting.
    pub fn recover(&self) -> HashMap<u32, Vec<Vec<u8>>> {
        self.recover_report().into_prefixes()
    }

    /// Post-crash recovery with per-object verified/repaired/lost
    /// accounting (see [`RecoveryReport`]).
    pub fn recover_report(&self) -> RecoveryReport {
        self.tiers.recover_report()
    }

    /// Graceful shutdown: drain everything, then join the worker.
    pub fn shutdown(self) {
        let _ = self.tx.send(Job::Shutdown);
        self.join_worker();
    }
}

impl Default for AsyncRuntime {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for AsyncRuntime {
    fn drop(&mut self) {
        let _ = self.tx.send(Job::Shutdown);
        self.join_worker();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultKind, FaultPlan};

    #[test]
    fn submit_drains_to_pfs_and_evicts_above() {
        let rt = AsyncRuntime::new();
        rt.submit(0, 0, vec![1; 100]).unwrap();
        rt.submit(0, 1, vec![2; 100]).unwrap();
        rt.wait_durable(&[(0, 0), (0, 1)]);
        assert_eq!(rt.tiers().pfs.get((0, 0)), Some(vec![1; 100]));
        assert_eq!(rt.tiers().pfs.get((0, 1)), Some(vec![2; 100]));
        assert!(!rt.tiers().host.contains((0, 0)));
        assert!(!rt.tiers().ssd.contains((0, 0)));
        rt.shutdown();
    }

    #[test]
    fn locate_prefers_durable_copy() {
        let rt = AsyncRuntime::new();
        rt.submit(3, 0, vec![7; 10]).unwrap();
        rt.wait_durable(&[(3, 0)]);
        assert_eq!(rt.tiers().locate((3, 0)), Some(vec![7; 10]));
        assert_eq!(rt.tiers().locate((9, 9)), None);
    }

    #[test]
    fn modeled_time_accumulates_down_the_chain() {
        let rt = AsyncRuntime::new();
        rt.submit(0, 0, vec![0; 1 << 20]).unwrap();
        rt.wait_durable(&[(0, 0)]);
        assert!(rt.tiers().host.modeled_busy_sec() > 0.0);
        assert!(rt.tiers().ssd.modeled_busy_sec() > rt.tiers().pfs.modeled_busy_sec());
        rt.shutdown();
    }

    #[test]
    fn kill_then_recover_returns_durable_prefix() {
        let rt = AsyncRuntime::new();
        // Make several checkpoints durable, then crash and submit more.
        for k in 0..3 {
            rt.submit(0, k, vec![k as u8; 50]).unwrap();
        }
        rt.wait_durable(&[(0, 0), (0, 1), (0, 2)]);
        rt.kill();
        // Post-crash submissions stage to host but never become durable.
        rt.submit(0, 3, vec![9; 50]).unwrap();
        let rec = rt.recover();
        assert_eq!(rec[&0].len(), 3);
        assert_eq!(rec[&0][2], vec![2u8; 50]);
    }

    #[test]
    fn recover_stops_at_gaps() {
        // A rank whose ckpt 1 never landed: only ckpt 0 is usable.
        let rt = AsyncRuntime::new();
        rt.tiers().pfs.put((5, 0), vec![1]).unwrap();
        rt.tiers().pfs.put((5, 2), vec![3]).unwrap();
        let rec = rt.recover();
        assert_eq!(rec[&5], vec![vec![1u8]]);
    }

    #[test]
    fn backpressure_stalls_then_completes() {
        // Host tier holds two 100-byte checkpoints; the SSD drains at a
        // throttled pace, so a burst of 8 must stall the producer — and
        // every byte still lands durably.
        let tiers = TierChain::with_configs(
            TierConfig {
                name: "host",
                bandwidth_bps: 25.0e9,
                capacity: 220,
            },
            TierConfig {
                name: "ssd",
                bandwidth_bps: 1e6,
                capacity: u64::MAX,
            },
            TierConfig::pfs(),
        );
        // 100 bytes at 1 MB/s modeled = 0.1 ms real per hop at scale 1.0.
        let rt = AsyncRuntime::with_tiers_throttled(tiers, 1.0);
        let mut total_stall = Duration::ZERO;
        for k in 0..8u32 {
            total_stall += rt.submit_blocking(0, k, vec![k as u8; 100]).unwrap();
        }
        assert!(total_stall > Duration::ZERO, "burst must have stalled");
        let ids: Vec<_> = (0..8u32).map(|k| (0, k)).collect();
        rt.wait_durable(&ids);
        for &id in &ids {
            assert_eq!(rt.tiers().pfs.get(id), Some(vec![id.1 as u8; 100]));
        }
        rt.shutdown();
    }

    #[test]
    fn submit_blocking_without_pressure_is_instant() {
        let rt = AsyncRuntime::new();
        let stall = rt.submit_blocking(0, 0, vec![1; 64]).unwrap();
        assert!(stall < Duration::from_millis(50));
        rt.wait_durable(&[(0, 0)]);
    }

    #[test]
    fn submit_blocking_errors_after_kill() {
        let tiers = TierChain::with_configs(
            TierConfig {
                name: "host",
                bandwidth_bps: 25.0e9,
                capacity: 50,
            },
            TierConfig::ssd(),
            TierConfig::pfs(),
        );
        let rt = AsyncRuntime::with_tiers(tiers);
        // Kill first so the flusher deterministically never drains: ckpt 0
        // stays staged in host memory.
        rt.kill();
        rt.submit(0, 0, vec![0; 40]).unwrap();
        // The host is full and nothing will free it: must error, not spin.
        assert!(rt.submit_blocking(0, 1, vec![0; 40]).is_err());
    }

    #[test]
    fn telemetry_tracks_submissions_through_durability() {
        let rt = AsyncRuntime::new();
        for k in 0..3u32 {
            rt.submit(0, k, vec![k as u8; 4096]).unwrap();
        }
        rt.wait_durable(&[(0, 0), (0, 1), (0, 2)]);
        let reg = Arc::clone(rt.telemetry());
        rt.shutdown(); // joins the flusher: all metric updates are visible
        assert_eq!(reg.counter("runtime/submitted").get(), 3);
        assert_eq!(reg.counter("runtime/durable").get(), 3);
        assert_eq!(reg.gauge("runtime/durable_lag").get(), 0);
        assert_eq!(reg.gauge("runtime/queue_depth").get(), 0);
        assert_eq!(reg.counter("tier/host/evictions").get(), 3);
        assert_eq!(reg.counter("tier/ssd/evictions").get(), 3);
        assert_eq!(reg.gauge("tier/host/used_bytes").get(), 0);
        assert_eq!(reg.histogram("tier/host/object_bytes").snapshot().count, 3);
        assert_eq!(reg.histogram("tier/pfs/flush_ns").snapshot().count, 3);
        // Unthrottled fast-path submissions never stall.
        assert_eq!(reg.counter("runtime/producer_stalls").get(), 0);
        assert_eq!(reg.counter("runtime/producer_stall_ns").get(), 0);
        // Fault-free runs never retry or degrade.
        assert_eq!(reg.counter("runtime/retries").get(), 0);
        assert_eq!(reg.counter("runtime/degraded_flushes").get(), 0);
    }

    #[test]
    fn many_ranks_interleaved() {
        let rt = AsyncRuntime::new();
        let mut ids = Vec::new();
        for rank in 0..8u32 {
            for k in 0..5u32 {
                rt.submit(rank, k, vec![rank as u8; 64]).unwrap();
                ids.push((rank, k));
            }
        }
        rt.wait_durable(&ids);
        for &id in &ids {
            assert!(rt.tiers().pfs.contains(id));
        }
        rt.shutdown();
    }

    #[test]
    fn transient_put_errors_are_retried_to_durability() {
        // The first two SSD puts and the first PFS put fail transiently;
        // the drain must still land everything, with retries counted.
        let plan = FaultPlan::builder()
            .on_put("ssd", 0, FaultKind::TransientIo)
            .on_put("ssd", 1, FaultKind::TransientIo)
            .on_put("pfs", 0, FaultKind::TransientIo)
            .build();
        let rt = AsyncRuntime::with_tiers(TierChain::with_faults(plan));
        for k in 0..3u32 {
            rt.submit(0, k, vec![k as u8; 128]).unwrap();
        }
        let ids = [(0, 0), (0, 1), (0, 2)];
        rt.wait_durable(&ids);
        for id in ids {
            assert_eq!(rt.tiers().pfs.get(id), Some(vec![id.1 as u8; 128]));
        }
        let reg = Arc::clone(rt.telemetry());
        assert!(rt.undrainable().is_empty());
        rt.shutdown();
        assert_eq!(reg.counter("runtime/retries").get(), 3);
        assert_eq!(reg.counter("runtime/durable").get(), 3);
        assert_eq!(reg.counter("runtime/degraded_flushes").get(), 0);
    }

    #[test]
    fn exhausted_ssd_degrades_to_pfs() {
        // Every SSD put fails: after retry exhaustion the flusher must
        // degrade host → PFS directly, and the object still becomes durable.
        let mut b = FaultPlan::builder();
        for op in 0..64 {
            b = b.on_put("ssd", op, FaultKind::TransientIo);
        }
        let rt = AsyncRuntime::with_tiers(TierChain::with_faults(b.build()));
        rt.submit(0, 0, vec![5; 256]).unwrap();
        rt.wait_durable(&[(0, 0)]);
        assert_eq!(rt.tiers().pfs.get((0, 0)), Some(vec![5; 256]));
        assert!(!rt.tiers().ssd.contains((0, 0)));
        assert!(!rt.tiers().host.contains((0, 0)));
        let reg = Arc::clone(rt.telemetry());
        rt.shutdown();
        assert_eq!(reg.counter("runtime/degraded_flushes").get(), 1);
        assert_eq!(reg.counter("runtime/durable").get(), 1);
        assert!(reg.counter("runtime/retries").get() >= 3);
    }

    #[test]
    fn full_ssd_degrades_without_retrying() {
        // A zero-capacity SSD refuses everything; objects must reach the
        // PFS via degradation with no pointless retries.
        let tiers = TierChain::with_configs(
            TierConfig::host(),
            TierConfig {
                name: "ssd",
                bandwidth_bps: 2.0e9,
                capacity: 0,
            },
            TierConfig::pfs(),
        );
        let rt = AsyncRuntime::with_tiers(tiers);
        rt.submit(0, 0, vec![1; 64]).unwrap();
        rt.wait_durable(&[(0, 0)]);
        assert_eq!(rt.tiers().pfs.get((0, 0)), Some(vec![1; 64]));
        let reg = Arc::clone(rt.telemetry());
        rt.shutdown();
        assert_eq!(reg.counter("runtime/degraded_flushes").get(), 1);
        assert_eq!(reg.counter("runtime/retries").get(), 0);
    }

    #[test]
    fn corrupt_staged_copy_is_quarantined_and_reported() {
        // A torn host write can never drain: the flusher must quarantine
        // it, mark it undrainable (so wait_durable terminates), and the
        // recovery report must call it lost.
        let plan = FaultPlan::builder()
            .on_put("host", 0, FaultKind::TornWrite { keep_bytes: 8 })
            .build();
        let rt = AsyncRuntime::with_tiers(TierChain::with_faults(plan));
        rt.submit(0, 0, vec![9; 512]).unwrap();
        rt.submit(0, 1, vec![8; 512]).unwrap();
        rt.wait_durable(&[(0, 0), (0, 1)]);
        assert_eq!(rt.undrainable(), vec![(0, 0)]);
        assert_eq!(rt.tiers().pfs.get((0, 1)), Some(vec![8; 512]));
        let report = rt.recover_report();
        assert_eq!(report.total(ObjectStatus::LostVolatile), 1);
        // ckpt 0 lost ⇒ the durable prefix is empty even though ckpt 1
        // itself is durable and verified.
        assert_eq!(report.ranks[0].prefix_len, 0);
        assert_eq!(report.total_verified(), 1);
        let reg = Arc::clone(rt.telemetry());
        assert!(reg.counter("integrity/frames_corrupt").get() >= 1);
        rt.shutdown();
    }

    #[test]
    fn locate_skips_corrupt_copy_and_repairs_it() {
        // Bit-flip the SSD copy of an object that also exists (valid) on
        // the host: locate must return the good host bytes, quarantine the
        // flipped SSD copy, and repair the SSD from the host copy.
        let plan = FaultPlan::builder()
            .on_put("ssd", 0, FaultKind::BitFlip { bit: 321 })
            .build();
        let tiers = TierChain::with_faults(plan);
        tiers.host.put((0, 0), vec![3; 128]).unwrap();
        tiers.ssd.put((0, 0), vec![3; 128]).unwrap(); // corrupted by the plan
        assert_eq!(tiers.locate((0, 0)), Some(vec![3; 128]));
        assert_eq!(tiers.integrity().corrupt_count(), 1);
        assert_eq!(tiers.integrity().repaired_count(), 1);
        // The repaired SSD copy now verifies.
        assert_eq!(tiers.ssd.get((0, 0)), Some(vec![3; 128]));
        assert_eq!(tiers.ssd.quarantined(), vec![(0, 0)]);
    }

    #[test]
    fn recover_repairs_corrupt_pfs_copy_from_higher_tier() {
        // The PFS copy is bit-flipped but the SSD still holds a valid
        // copy: recovery must repair the durable copy and report it.
        let plan = FaultPlan::builder()
            .on_put("pfs", 0, FaultKind::BitFlip { bit: 100 })
            .build();
        let tiers = TierChain::with_faults(plan);
        tiers.pfs.put((2, 0), vec![6; 200]).unwrap(); // corrupted
        tiers.ssd.put((2, 0), vec![6; 200]).unwrap(); // redundant good copy
        let report = tiers.recover_report();
        assert_eq!(report.total_repaired(), 1);
        assert_eq!(report.total_lost(), 0);
        assert_eq!(report.ranks[0].prefix_len, 1);
        assert_eq!(report.ranks[0].payloads[0], vec![6; 200]);
        // The PFS copy has been rewritten and now verifies.
        assert_eq!(tiers.pfs.get((2, 0)), Some(vec![6; 200]));
        assert_eq!(tiers.integrity().repaired_count(), 1);
    }

    #[test]
    fn corrupt_pfs_copy_without_redundancy_is_lost() {
        let plan = FaultPlan::builder()
            .on_put("pfs", 0, FaultKind::BitFlip { bit: 7 })
            .build();
        let tiers = TierChain::with_faults(plan);
        tiers.pfs.put((0, 0), vec![1; 64]).unwrap();
        let report = tiers.recover_report();
        assert_eq!(report.total(ObjectStatus::LostCorrupt), 1);
        assert_eq!(report.total_durable_prefix(), 0);
        assert_eq!(tiers.pfs.quarantined(), vec![(0, 0)]);
        // The legacy view simply has no usable prefix.
        assert_eq!(
            tiers.recover_report().into_prefixes()[&0],
            Vec::<Vec<u8>>::new()
        );
    }

    fn compressible_payload(len_u32s: u32) -> Vec<u8> {
        (0..len_u32s).flat_map(|i| (i / 7).to_le_bytes()).collect()
    }

    fn zstd_object(payload: &[u8]) -> StoredObject {
        let codec = ckpt_compress::codec_by_id(6).unwrap();
        let container = ckpt_compress::blocks::compress_blocks(
            &*codec,
            payload,
            ckpt_compress::blocks::DEFAULT_BLOCK_SIZE,
        );
        StoredObject::encoded(6, payload.len() as u64, container)
    }

    #[test]
    fn compressed_flush_round_trips_and_shrinks_lower_tiers() {
        let reg = Arc::new(Registry::new());
        let rt = AsyncRuntime::with_compression(
            TierChain::new(),
            0.0,
            Arc::clone(&reg),
            CompressionPolicy::Adaptive,
        );
        let payload = compressible_payload(100_000);
        rt.submit(0, 0, payload.clone()).unwrap();
        rt.wait_durable(&[(0, 0)]);

        // Transparent reads return the original bytes; the durable copy is
        // stored compressed and charged at its compressed size.
        assert_eq!(rt.tiers().pfs.get((0, 0)), Some(payload.clone()));
        let durable = rt.tiers().pfs.inspect_object((0, 0)).into_object().unwrap();
        assert_ne!(durable.codec, 0);
        assert_eq!(durable.uncompressed_len, payload.len() as u64);
        assert!(rt.tiers().pfs.used_bytes() < payload.len() as u64 / 2);
        assert_eq!(rt.tiers().locate((0, 0)), Some(payload.clone()));

        rt.shutdown();
        // Size histograms stay in payload units regardless of policy
        // (PR-1 invariant: host/ssd/pfs object_bytes are comparable).
        for tier in ["host", "ssd", "pfs"] {
            let snap = reg
                .histogram(&format!("tier/{tier}/object_bytes"))
                .snapshot();
            assert_eq!(snap.sum, payload.len() as u64, "{tier} histogram");
        }
        let json = reg.snapshot_json();
        assert!(
            json.contains("compress/bytes_in"),
            "missing metrics: {json}"
        );
        assert!(reg.gauge("compress/ratio_pct").get() < 100);
        assert!(reg.counter("compress/decode_ns").get() > 0);
    }

    #[test]
    fn off_policy_exports_the_pre_compression_schema() {
        let rt = AsyncRuntime::new();
        rt.submit(0, 0, compressible_payload(50_000)).unwrap();
        rt.wait_durable(&[(0, 0)]);
        let reg = Arc::clone(rt.telemetry());
        rt.shutdown();
        assert!(!reg.snapshot_json().contains("compress/"));
    }

    #[test]
    fn degraded_flush_of_compressed_object_skips_ssd_but_stays_compressed() {
        let tiers = TierChain::with_configs(
            TierConfig::host(),
            TierConfig {
                name: "ssd",
                bandwidth_bps: 2.0e9,
                capacity: 0,
            },
            TierConfig::pfs(),
        );
        let reg = Arc::new(Registry::new());
        let rt = AsyncRuntime::with_compression(
            tiers,
            0.0,
            Arc::clone(&reg),
            CompressionPolicy::Fixed(6),
        );
        let payload = compressible_payload(60_000);
        rt.submit(0, 0, payload.clone()).unwrap();
        rt.wait_durable(&[(0, 0)]);
        assert_eq!(rt.tiers().pfs.get((0, 0)), Some(payload));
        let durable = rt.tiers().pfs.inspect_object((0, 0)).into_object().unwrap();
        assert_eq!(durable.codec, 6);
        rt.shutdown();
        assert_eq!(reg.counter("runtime/degraded_flushes").get(), 1);
        // Encoded exactly once: the degraded PFS retry reuses the object.
        assert_eq!(reg.counter("compress/objects/zstd").get(), 1);
    }

    #[test]
    fn recover_repairs_corrupt_compressed_pfs_copy_without_transcoding() {
        // The PFS copy of a *compressed* object is bit-flipped; the SSD
        // holds a clean compressed copy. Recovery must quarantine the bad
        // copy, verify the compressed checksum of the good one, and repair
        // the PFS with the encoded bytes verbatim.
        let plan = FaultPlan::builder()
            .on_put("pfs", 0, FaultKind::BitFlip { bit: 555 })
            .build();
        let tiers = TierChain::with_faults(plan);
        let payload = compressible_payload(80_000);
        let obj = zstd_object(&payload);
        tiers.pfs.store_object((2, 0), obj.clone()).unwrap(); // corrupted
        tiers.ssd.store_object((2, 0), obj.clone()).unwrap(); // good copy
        let report = tiers.recover_report();
        assert_eq!(report.total_repaired(), 1);
        assert_eq!(report.ranks[0].payloads[0], payload);
        // The repaired durable copy is still the same encoded object.
        assert_eq!(tiers.pfs.inspect_object((2, 0)).into_object(), Some(obj));
        assert_eq!(tiers.pfs.quarantined(), vec![(2, 0)]);
    }

    #[test]
    fn locate_repairs_with_encoded_bytes() {
        let plan = FaultPlan::builder()
            .on_put("ssd", 0, FaultKind::BitFlip { bit: 222 })
            .build();
        let tiers = TierChain::with_faults(plan);
        let payload = compressible_payload(70_000);
        let obj = zstd_object(&payload);
        tiers.ssd.store_object((0, 0), obj.clone()).unwrap(); // corrupted
        tiers.host.store_object((0, 0), obj.clone()).unwrap(); // good copy
        assert_eq!(tiers.locate((0, 0)), Some(payload));
        assert_eq!(tiers.integrity().repaired_count(), 1);
        // The repaired SSD copy verifies and is still compressed.
        assert_eq!(tiers.ssd.inspect_object((0, 0)).into_object(), Some(obj));
    }

    #[test]
    fn undecompressible_durable_copy_counts_as_corrupt_and_lost() {
        // A frame that verifies but whose payload is garbage to the codec:
        // recovery must classify it lost-corrupt, not crash or return junk.
        let tiers = TierChain::new();
        tiers
            .pfs
            .store_object((0, 0), StoredObject::encoded(6, 4096, vec![0x5A; 99]))
            .unwrap();
        let report = tiers.recover_report();
        assert_eq!(report.total(ObjectStatus::LostCorrupt), 1);
        assert_eq!(tiers.pfs.quarantined(), vec![(0, 0)]);
    }

    #[test]
    fn kill_joins_the_flusher() {
        let rt = AsyncRuntime::new();
        rt.submit(0, 0, vec![1; 64]).unwrap();
        rt.kill();
        // After kill() the worker is joined: no handle remains.
        assert!(rt.worker.lock().is_none());
        // Tier state is frozen now; recover sees a consistent snapshot.
        let before = rt.recover_report().total_objects();
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(rt.recover_report().total_objects(), before);
    }
}
