//! Lineage access: reconstruct checkpoint contents from the stored record.
//!
//! The record of a rank is the ordered sequence of encoded diffs
//! `(rank, 0), (rank, 1), …` spread across the tier chain. Restoration
//! decodes them and replays the de-duplication diffs through
//! [`ckpt_dedup::restore_record`].

use crate::integrity::RecoveryReport;
use crate::runtime::TierChain;
use ckpt_dedup::diff::{DecodeError, Diff};
use ckpt_dedup::restart::is_self_contained;
use ckpt_dedup::restore::{RestoreError, Restorer};
use std::collections::BTreeMap;

/// Errors when reading a rank's lineage back.
#[derive(Debug)]
pub enum LineageError {
    /// No checkpoints stored for this rank.
    Empty,
    /// The newest surviving run of checkpoints is incremental, but its
    /// predecessor is gone from every tier (missing or corrupt beyond
    /// repair). The run cannot be replayed; restoring an older state
    /// silently would hide the data loss, so this is a typed error.
    Hole {
        rank: u32,
        /// The id every copy of which is missing or corrupt.
        missing: u32,
        /// First id of the surviving (but unusable) newer run.
        present_above: u32,
    },
    /// A diff failed to decode (the `u32` is its checkpoint id).
    Decode(u32, DecodeError),
    /// The diff chain failed to replay.
    Restore(RestoreError),
}

impl std::fmt::Display for LineageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LineageError::Empty => write!(f, "no checkpoints for rank"),
            LineageError::Hole {
                rank,
                missing,
                present_above,
            } => write!(
                f,
                "rank {rank}: checkpoint {missing} lost below surviving \
                 checkpoints {present_above}.. (not a rebase point)"
            ),
            LineageError::Decode(k, e) => write!(f, "checkpoint {k} corrupt: {e}"),
            LineageError::Restore(e) => write!(f, "restore failed: {e}"),
        }
    }
}

impl std::error::Error for LineageError {}

/// Collect the newest restorable chain of encoded diffs for `rank`,
/// searching every tier (durable copies preferred). Returns the chain's
/// base checkpoint id and the encoded diffs `base, base+1, …` in order.
///
/// Frames that fail verification are *skipped*, never returned: a corrupt
/// shallow copy cannot shadow a valid deeper one (see
/// [`TierChain::locate`]). The chain is the maximal contiguous run ending
/// at the newest surviving id; a base above 0 is legal only when that
/// record is self-contained (a rebase record whose predecessors were
/// compacted away). Otherwise the run has a genuine hole — an id whose
/// every copy is lost below the durable suffix — and that is surfaced as
/// [`LineageError::Hole`] instead of silently restoring stale state.
pub fn collect_record(tiers: &TierChain, rank: u32) -> Result<(u32, Vec<Vec<u8>>), LineageError> {
    let mut present: BTreeMap<u32, Vec<u8>> = BTreeMap::new();
    // Ids known only to the redundancy group (every local copy wiped by a
    // rank loss) must be enumerated too: `locate` falls back to a group
    // rebuild for them.
    let group_ids = tiers.redundancy_member_ids();
    for tier_ids in [
        tiers.pfs.resident(),
        tiers.pfs.quarantined(),
        tiers.ssd.resident(),
        tiers.ssd.quarantined(),
        tiers.host.resident(),
        tiers.host.quarantined(),
        group_ids,
    ] {
        for (r, k) in tier_ids {
            if r == rank && !present.contains_key(&k) {
                if let Some(bytes) = tiers.locate((rank, k)) {
                    present.insert(k, bytes);
                }
            }
        }
    }
    let Some(&max) = present.keys().next_back() else {
        return Err(LineageError::Empty);
    };
    let mut base = max;
    while base > 0 && present.contains_key(&(base - 1)) {
        base -= 1;
    }
    if base > 0 {
        // The run does not reach checkpoint 0: it is only replayable from
        // a self-contained rebase record. Use the lowest one in the run
        // (keeping the most versions); with none, the run is stranded
        // above a genuine hole.
        let head = (base..=max).find(|k| {
            Diff::decode(&present[k])
                .map(|d| is_self_contained(&d))
                .unwrap_or(false)
        });
        let Some(head) = head else {
            return Err(LineageError::Hole {
                rank,
                missing: base - 1,
                present_above: base,
            });
        };
        base = head;
    }
    let chain = (base..=max).map(|k| present.remove(&k).unwrap()).collect();
    Ok((base, chain))
}

/// Replay a base-offset sequence of encoded diffs into materialized
/// versions (version `i` of the result is checkpoint `base + i`).
fn replay(base: u32, encoded: &[Vec<u8>]) -> Result<Vec<Vec<u8>>, LineageError> {
    if encoded.is_empty() {
        return Err(LineageError::Empty);
    }
    let mut restorer = Restorer::with_base(base);
    for (i, bytes) in encoded.iter().enumerate() {
        let diff = Diff::decode(bytes).map_err(|e| LineageError::Decode(base + i as u32, e))?;
        restorer.apply(&diff).map_err(LineageError::Restore)?;
    }
    Ok((0..restorer.len())
        .map(|k| restorer.version(k).unwrap().to_vec())
        .collect())
}

/// The restart path with full accounting: run chain-level recovery (which
/// verifies, repairs, and quarantines — see [`TierChain::recover_report`]),
/// then materialize `rank`'s usable chain. The report covers *all* ranks
/// so callers can log cluster-wide damage while restoring one rank.
pub fn restore_rank_with_report(
    tiers: &TierChain,
    rank: u32,
) -> Result<(u32, Vec<Vec<u8>>, RecoveryReport), LineageError> {
    let report = tiers.recover_report();
    let (base, encoded) = report
        .ranks
        .iter()
        .find(|r| r.rank == rank)
        .map(|r| (r.base, r.payloads.clone()))
        .unwrap_or((0, Vec::new()));
    let versions = replay(base, &encoded)?;
    Ok((base, versions, report))
}

/// Materialize every surviving version of `rank`'s record. Returns the
/// base checkpoint id (0 unless the chain was compacted) and the versions
/// `base, base+1, …` in order.
pub fn restore_rank(tiers: &TierChain, rank: u32) -> Result<(u32, Vec<Vec<u8>>), LineageError> {
    let (base, encoded) = collect_record(tiers, rank)?;
    Ok((base, replay(base, &encoded)?))
}

/// Materialize only the latest version of `rank`'s record (the restart path).
pub fn restore_rank_latest(tiers: &TierChain, rank: u32) -> Result<(u32, Vec<u8>), LineageError> {
    let (base, versions) = restore_rank(tiers, rank)?;
    let last = base + versions.len() as u32 - 1;
    Ok((last, versions.into_iter().next_back().unwrap()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::AsyncRuntime;
    use ckpt_dedup::prelude::*;

    #[test]
    fn full_round_trip_through_the_runtime() {
        let rt = AsyncRuntime::new();
        let dev = gpu_sim::Device::a100();
        let mut ckpt = TreeCheckpointer::new(dev, TreeConfig::new(64));

        let mut data: Vec<u8> = (0..8192u32).map(|i| (i % 241) as u8).collect();
        let mut snapshots = Vec::new();
        let mut ids = Vec::new();
        for k in 0..4u32 {
            if k > 0 {
                let len = data.len();
                for j in 0..64 {
                    data[(k as usize * 997 + j * 13) % len] ^= 0x5a;
                }
            }
            snapshots.push(data.clone());
            let out = ckpt.checkpoint(&data);
            rt.submit(0, k, out.diff.encode()).unwrap();
            ids.push((0, k));
        }
        rt.wait_durable(&ids);

        let (base, versions) = restore_rank(rt.tiers(), 0).unwrap();
        assert_eq!(base, 0);
        assert_eq!(versions.len(), 4);
        for (v, s) in versions.iter().zip(&snapshots) {
            assert_eq!(v, s);
        }
        let (last, latest) = restore_rank_latest(rt.tiers(), 0).unwrap();
        assert_eq!(last, 3);
        assert_eq!(&latest, snapshots.last().unwrap());
        rt.shutdown();
    }

    #[test]
    fn restore_with_report_accounts_for_every_object() {
        let rt = AsyncRuntime::new();
        let dev = gpu_sim::Device::a100();
        let mut ckpt = ListCheckpointer::new(dev, TreeConfig::new(64));
        let mut data: Vec<u8> = (0..4096u32).map(|i| (i % 199) as u8).collect();
        let mut snapshots = Vec::new();
        for k in 0..3u32 {
            if k > 0 {
                data[k as usize * 31] ^= 0xff;
            }
            snapshots.push(data.clone());
            let out = ckpt.checkpoint(&data);
            rt.submit(0, k, out.diff.encode()).unwrap();
        }
        rt.wait_durable(&[(0, 0), (0, 1), (0, 2)]);
        let (base, versions, report) = restore_rank_with_report(rt.tiers(), 0).unwrap();
        assert_eq!(base, 0);
        assert_eq!(versions, snapshots);
        assert_eq!(report.total_verified(), 3);
        assert_eq!(report.total_lost(), 0);
        assert_eq!(report.total_durable_prefix(), 3);
        rt.shutdown();
    }

    #[test]
    fn empty_rank_errors() {
        let rt = AsyncRuntime::new();
        assert!(matches!(
            restore_rank(rt.tiers(), 42),
            Err(LineageError::Empty)
        ));
    }

    #[test]
    fn corrupt_shallow_copy_is_skipped_for_deeper_valid_one() {
        use crate::fault::{FaultKind, FaultPlan};
        // The second *host* put is bit-flipped; the PFS holds valid copies
        // of both diffs. The record must come back whole (the corrupt host
        // copy is skipped, not returned) and the host copy gets repaired.
        let plan = FaultPlan::builder()
            .on_put("host", 1, FaultKind::BitFlip { bit: 40 })
            .build();
        let tiers = crate::runtime::TierChain::with_faults(plan);
        tiers.pfs.put((0, 0), vec![1, 2, 3]).unwrap();
        tiers.pfs.put((0, 1), vec![4, 5]).unwrap();
        tiers.host.put((0, 0), vec![1, 2, 3]).unwrap();
        tiers.host.put((0, 1), vec![4, 5]).unwrap(); // corrupted by the plan
        assert_eq!(
            collect_record(&tiers, 0).unwrap(),
            (0, vec![vec![1, 2, 3], vec![4, 5]])
        );
        assert_eq!(tiers.integrity().corrupt_count(), 1);
        assert_eq!(tiers.integrity().repaired_count(), 1);
        assert_eq!(tiers.host.get((0, 1)), Some(vec![4, 5]));
    }

    #[test]
    fn unrepairable_mid_chain_corruption_is_a_typed_hole() {
        use crate::fault::{FaultKind, FaultPlan};
        // ckpt 1's only copy is corrupt; ckpt 2 survives but is an
        // incremental diff, unusable without its predecessor. The old
        // behavior silently returned the stale prefix [ckpt 0]; the loss
        // must now surface as a typed hole.
        let plan = FaultPlan::builder()
            .on_put("pfs", 1, FaultKind::TornWrite { keep_bytes: 12 })
            .build();
        let tiers = crate::runtime::TierChain::with_faults(plan);
        let dev = gpu_sim::Device::a100();
        let mut ckpt = TreeCheckpointer::new(dev, TreeConfig::new(64));
        let mut data: Vec<u8> = (0..4096u32).map(|i| (i % 239) as u8).collect();
        for k in 0..3u32 {
            if k > 0 {
                data[k as usize * 101] ^= 0xff;
            }
            let out = ckpt.checkpoint(&data);
            tiers.pfs.put((0, k), out.diff.encode()).unwrap(); // #1 torn
        }
        match collect_record(&tiers, 0) {
            Err(LineageError::Hole {
                rank: 0,
                missing: 1,
                present_above: 2,
            }) => {}
            other => panic!("expected a typed hole, got {other:?}"),
        }
        assert_eq!(tiers.pfs.quarantined(), vec![(0, 1)]);
    }

    #[test]
    fn compacted_chain_collects_from_the_rebase_base() {
        // GC below a rebase record: ids 0–1 evicted, 2 is self-contained.
        let tiers = crate::runtime::TierChain::new();
        let dev = gpu_sim::Device::a100();
        let mut ckpt = TreeCheckpointer::new(dev, TreeConfig::new(64));
        let mut data: Vec<u8> = (0..4096u32).map(|i| (i % 233) as u8).collect();
        let mut snapshots = Vec::new();
        for k in 0..4u32 {
            if k > 0 {
                data[k as usize * 97] ^= 0xa5;
            }
            snapshots.push(data.clone());
            let out = if k == 2 {
                ckpt.rebase_checkpoint(&data)
            } else {
                ckpt.checkpoint(&data)
            };
            tiers.pfs.put((0, k), out.diff.encode()).unwrap();
        }
        assert!(tiers.pfs.evict((0, 0)));
        assert!(tiers.pfs.evict((0, 1)));
        let (base, chain) = collect_record(&tiers, 0).unwrap();
        assert_eq!((base, chain.len()), (2, 2));
        let (last, latest) = restore_rank_latest(&tiers, 0).unwrap();
        assert_eq!(last, 3);
        assert_eq!(&latest, &snapshots[3]);
    }

    #[test]
    fn corrupt_diff_reported_with_index() {
        let rt = AsyncRuntime::new();
        rt.tiers().pfs.put((1, 0), vec![0xde, 0xad]).unwrap();
        match restore_rank(rt.tiers(), 1) {
            Err(LineageError::Decode(0, _)) => {}
            other => panic!("expected decode error, got {other:?}"),
        }
    }
}
