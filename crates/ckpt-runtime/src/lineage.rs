//! Lineage access: reconstruct checkpoint contents from the stored record.
//!
//! The record of a rank is the ordered sequence of encoded diffs
//! `(rank, 0), (rank, 1), …` spread across the tier chain. Restoration
//! decodes them and replays the de-duplication diffs through
//! [`ckpt_dedup::restore_record`].

use crate::integrity::RecoveryReport;
use crate::runtime::TierChain;
use ckpt_dedup::diff::{DecodeError, Diff};
use ckpt_dedup::restore::{RestoreError, Restorer};

/// Errors when reading a rank's lineage back.
#[derive(Debug)]
pub enum LineageError {
    /// No checkpoints stored for this rank.
    Empty,
    /// A diff failed to decode.
    Decode(u32, DecodeError),
    /// The diff chain failed to replay.
    Restore(RestoreError),
}

impl std::fmt::Display for LineageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LineageError::Empty => write!(f, "no checkpoints for rank"),
            LineageError::Decode(k, e) => write!(f, "checkpoint {k} corrupt: {e}"),
            LineageError::Restore(e) => write!(f, "restore failed: {e}"),
        }
    }
}

impl std::error::Error for LineageError {}

/// Collect the contiguous prefix of encoded diffs available for `rank`,
/// searching every tier (durable copies preferred).
///
/// Frames that fail verification are *skipped*, never returned: a corrupt
/// shallow copy cannot shadow a valid deeper one (see
/// [`TierChain::locate`]). An id whose every copy is corrupt terminates
/// the prefix — later diffs are unusable without their predecessors.
pub fn collect_record(tiers: &TierChain, rank: u32) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    for k in 0u32.. {
        match tiers.locate((rank, k)) {
            Some(bytes) => out.push(bytes),
            None => break,
        }
    }
    out
}

/// Replay a sequence of encoded diffs into materialized versions.
fn replay(encoded: &[Vec<u8>]) -> Result<Vec<Vec<u8>>, LineageError> {
    if encoded.is_empty() {
        return Err(LineageError::Empty);
    }
    let mut restorer = Restorer::new();
    for (k, bytes) in encoded.iter().enumerate() {
        let diff = Diff::decode(bytes).map_err(|e| LineageError::Decode(k as u32, e))?;
        restorer.apply(&diff).map_err(LineageError::Restore)?;
    }
    Ok((0..restorer.len())
        .map(|k| restorer.version(k).unwrap().to_vec())
        .collect())
}

/// The restart path with full accounting: run chain-level recovery (which
/// verifies, repairs, and quarantines — see [`TierChain::recover_report`]),
/// then materialize `rank`'s durable prefix. The report covers *all* ranks
/// so callers can log cluster-wide damage while restoring one rank.
pub fn restore_rank_with_report(
    tiers: &TierChain,
    rank: u32,
) -> Result<(Vec<Vec<u8>>, RecoveryReport), LineageError> {
    let report = tiers.recover_report();
    let encoded: Vec<Vec<u8>> = report
        .ranks
        .iter()
        .find(|r| r.rank == rank)
        .map(|r| r.payloads.clone())
        .unwrap_or_default();
    let versions = replay(&encoded)?;
    Ok((versions, report))
}

/// Materialize every version of `rank`'s record.
pub fn restore_rank(tiers: &TierChain, rank: u32) -> Result<Vec<Vec<u8>>, LineageError> {
    replay(&collect_record(tiers, rank))
}

/// Materialize only the latest version of `rank`'s record (the restart path).
pub fn restore_rank_latest(tiers: &TierChain, rank: u32) -> Result<(u32, Vec<u8>), LineageError> {
    let versions = restore_rank(tiers, rank)?;
    let last = versions.len() as u32 - 1;
    Ok((last, versions.into_iter().next_back().unwrap()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::AsyncRuntime;
    use ckpt_dedup::prelude::*;

    #[test]
    fn full_round_trip_through_the_runtime() {
        let rt = AsyncRuntime::new();
        let dev = gpu_sim::Device::a100();
        let mut ckpt = TreeCheckpointer::new(dev, TreeConfig::new(64));

        let mut data: Vec<u8> = (0..8192u32).map(|i| (i % 241) as u8).collect();
        let mut snapshots = Vec::new();
        let mut ids = Vec::new();
        for k in 0..4u32 {
            if k > 0 {
                let len = data.len();
                for j in 0..64 {
                    data[(k as usize * 997 + j * 13) % len] ^= 0x5a;
                }
            }
            snapshots.push(data.clone());
            let out = ckpt.checkpoint(&data);
            rt.submit(0, k, out.diff.encode()).unwrap();
            ids.push((0, k));
        }
        rt.wait_durable(&ids);

        let versions = restore_rank(rt.tiers(), 0).unwrap();
        assert_eq!(versions.len(), 4);
        for (v, s) in versions.iter().zip(&snapshots) {
            assert_eq!(v, s);
        }
        let (last, latest) = restore_rank_latest(rt.tiers(), 0).unwrap();
        assert_eq!(last, 3);
        assert_eq!(&latest, snapshots.last().unwrap());
        rt.shutdown();
    }

    #[test]
    fn restore_with_report_accounts_for_every_object() {
        let rt = AsyncRuntime::new();
        let dev = gpu_sim::Device::a100();
        let mut ckpt = ListCheckpointer::new(dev, TreeConfig::new(64));
        let mut data: Vec<u8> = (0..4096u32).map(|i| (i % 199) as u8).collect();
        let mut snapshots = Vec::new();
        for k in 0..3u32 {
            if k > 0 {
                data[k as usize * 31] ^= 0xff;
            }
            snapshots.push(data.clone());
            let out = ckpt.checkpoint(&data);
            rt.submit(0, k, out.diff.encode()).unwrap();
        }
        rt.wait_durable(&[(0, 0), (0, 1), (0, 2)]);
        let (versions, report) = restore_rank_with_report(rt.tiers(), 0).unwrap();
        assert_eq!(versions, snapshots);
        assert_eq!(report.total_verified(), 3);
        assert_eq!(report.total_lost(), 0);
        assert_eq!(report.total_durable_prefix(), 3);
        rt.shutdown();
    }

    #[test]
    fn empty_rank_errors() {
        let rt = AsyncRuntime::new();
        assert!(matches!(
            restore_rank(rt.tiers(), 42),
            Err(LineageError::Empty)
        ));
    }

    #[test]
    fn corrupt_shallow_copy_is_skipped_for_deeper_valid_one() {
        use crate::fault::{FaultKind, FaultPlan};
        // The second *host* put is bit-flipped; the PFS holds valid copies
        // of both diffs. The record must come back whole (the corrupt host
        // copy is skipped, not returned) and the host copy gets repaired.
        let plan = FaultPlan::builder()
            .on_put("host", 1, FaultKind::BitFlip { bit: 40 })
            .build();
        let tiers = crate::runtime::TierChain::with_faults(plan);
        tiers.pfs.put((0, 0), vec![1, 2, 3]).unwrap();
        tiers.pfs.put((0, 1), vec![4, 5]).unwrap();
        tiers.host.put((0, 0), vec![1, 2, 3]).unwrap();
        tiers.host.put((0, 1), vec![4, 5]).unwrap(); // corrupted by the plan
        assert_eq!(collect_record(&tiers, 0), vec![vec![1, 2, 3], vec![4, 5]]);
        assert_eq!(tiers.integrity().corrupt_count(), 1);
        assert_eq!(tiers.integrity().repaired_count(), 1);
        assert_eq!(tiers.host.get((0, 1)), Some(vec![4, 5]));
    }

    #[test]
    fn record_stops_at_unrepairable_corruption() {
        use crate::fault::{FaultKind, FaultPlan};
        // ckpt 1's only copy is corrupt: the usable record is just ckpt 0,
        // even though a valid ckpt 2 exists beyond the gap.
        let plan = FaultPlan::builder()
            .on_put("pfs", 1, FaultKind::TornWrite { keep_bytes: 12 })
            .build();
        let tiers = crate::runtime::TierChain::with_faults(plan);
        tiers.pfs.put((0, 0), vec![1]).unwrap();
        tiers.pfs.put((0, 1), vec![2]).unwrap(); // torn
        tiers.pfs.put((0, 2), vec![3]).unwrap();
        assert_eq!(collect_record(&tiers, 0), vec![vec![1]]);
        assert_eq!(tiers.pfs.quarantined(), vec![(0, 1)]);
    }

    #[test]
    fn corrupt_diff_reported_with_index() {
        let rt = AsyncRuntime::new();
        rt.tiers().pfs.put((1, 0), vec![0xde, 0xad]).unwrap();
        match restore_rank(rt.tiers(), 1) {
            Err(LineageError::Decode(0, _)) => {}
            other => panic!("expected decode error, got {other:?}"),
        }
    }
}
