//! Deterministic, seedable fault injection for storage tiers.
//!
//! A [`FaultPlan`] schedules faults against the *Nth operation of a given
//! kind on a given tier* — never against wall-clock time or thread identity
//! — so the set of faults that fire is a pure function of the operation
//! sequence each tier observes. Plans carry all of their state internally
//! (per-tier operation counters, the fired-fault log); there is no global
//! registry, so independent tests compose freely.
//!
//! Supported fault kinds, mirroring the failure taxonomy of multi-level
//! checkpointing runtimes (VeloC, FTI):
//!
//! * **Torn write** — only a prefix of the framed object reaches the tier,
//!   the artifact of a crash racing a write. Detected at read time by frame
//!   verification.
//! * **Bit flip** — silent media corruption of a stored object.
//! * **Transient I/O error** — a `put`/`get` fails once; retry succeeds.
//! * **Latency spike** — an operation stalls for a bounded, modeled delay.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Which tier operation a fault targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpKind {
    Put,
    Get,
}

/// What happens when a scheduled fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// Keep only the first `keep_bytes` of the framed object (put only).
    TornWrite { keep_bytes: u32 },
    /// Flip stored bit `bit % (len * 8)` of the framed object (put only).
    BitFlip { bit: u64 },
    /// Fail the operation with a transient I/O error.
    TransientIo,
    /// Delay the operation by `micros` microseconds, then proceed.
    LatencySpike { micros: u32 },
    /// Whole-rank node loss: every object rank `rank` holds in the
    /// *volatile* tiers (host, SSD) — resident or quarantined — is wiped,
    /// along with any redundancy-group objects hosted on that rank. The
    /// operation that trips the fault proceeds normally; the wipe is
    /// applied by the tier chain at its next deterministic poll point
    /// (flush start, locate, recovery). The durable PFS tier survives.
    RankLoss { rank: u32 },
}

/// One scheduled fault: the `ordinal`-th `op` on tier `tier` (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    pub tier: &'static str,
    pub op: OpKind,
    pub ordinal: u64,
    pub kind: FaultKind,
}

/// A fault that actually fired, recorded in plan order for assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct FiredFault {
    pub tier: &'static str,
    pub op: OpKind,
    pub ordinal: u64,
    pub kind: FaultKind,
}

#[derive(Default)]
struct PlanState {
    /// Next operation ordinal per (tier, op kind).
    counters: HashMap<(&'static str, OpKind), u64>,
    fired: Vec<FiredFault>,
}

/// A deterministic schedule of tier faults. Construct with
/// [`FaultPlan::builder`] for explicit schedules or
/// [`FaultPlan::from_seed`] for randomized-but-reproducible ones, then hand
/// an `Arc` of it to [`Tier::with_faults`](crate::tier::Tier::with_faults)
/// (or [`TierChain::with_faults`](crate::runtime::TierChain::with_faults)).
pub struct FaultPlan {
    scheduled: HashMap<(&'static str, OpKind, u64), FaultKind>,
    state: Mutex<PlanState>,
}

impl FaultPlan {
    /// A plan with no faults (useful as a baseline in parameterized tests).
    pub fn empty() -> Arc<Self> {
        FaultPlanBuilder::new().build()
    }

    pub fn builder() -> FaultPlanBuilder {
        FaultPlanBuilder::new()
    }

    /// A randomized plan derived entirely from `seed`: `count` faults are
    /// placed on uniformly-chosen tiers, op kinds and ordinals in
    /// `0..horizon`, with kinds drawn from the full taxonomy. The same seed
    /// always produces the same schedule.
    pub fn from_seed(seed: u64, count: usize, horizon: u64) -> Arc<Self> {
        let mut rng = SplitMix64::new(seed);
        let mut b = FaultPlanBuilder::new();
        let tiers = ["host", "ssd", "pfs"];
        for _ in 0..count {
            let tier = tiers[(rng.next() % 3) as usize];
            let ordinal = rng.next() % horizon.max(1);
            let (op, kind) = match rng.next() % 5 {
                0 => (
                    OpKind::Put,
                    FaultKind::TornWrite {
                        keep_bytes: (rng.next() % 64) as u32,
                    },
                ),
                1 => (OpKind::Put, FaultKind::BitFlip { bit: rng.next() }),
                2 => (OpKind::Put, FaultKind::TransientIo),
                3 => (OpKind::Get, FaultKind::TransientIo),
                _ => (
                    OpKind::Put,
                    FaultKind::LatencySpike {
                        micros: (rng.next() % 200) as u32,
                    },
                ),
            };
            b = b.fault(tier, op, ordinal, kind);
        }
        b.build()
    }

    /// Like [`from_seed`](Self::from_seed), but the taxonomy additionally
    /// includes [`FaultKind::RankLoss`] events targeting one of `ranks`
    /// ranks (cluster failure schedules for redundancy-group tests). Kept
    /// as a separate constructor so every schedule `from_seed` ever
    /// produced stays byte-stable.
    pub fn from_seed_clustered(seed: u64, count: usize, horizon: u64, ranks: u32) -> Arc<Self> {
        let mut rng = SplitMix64::new(seed);
        let mut b = FaultPlanBuilder::new();
        let tiers = ["host", "ssd", "pfs"];
        for _ in 0..count {
            let tier = tiers[(rng.next() % 3) as usize];
            let ordinal = rng.next() % horizon.max(1);
            let (op, kind) = match rng.next() % 6 {
                0 => (
                    OpKind::Put,
                    FaultKind::TornWrite {
                        keep_bytes: (rng.next() % 64) as u32,
                    },
                ),
                1 => (OpKind::Put, FaultKind::BitFlip { bit: rng.next() }),
                2 => (OpKind::Put, FaultKind::TransientIo),
                3 => (OpKind::Get, FaultKind::TransientIo),
                4 => (
                    OpKind::Put,
                    FaultKind::RankLoss {
                        rank: (rng.next() % ranks.max(1) as u64) as u32,
                    },
                ),
                _ => (
                    OpKind::Put,
                    FaultKind::LatencySpike {
                        micros: (rng.next() % 200) as u32,
                    },
                ),
            };
            b = b.fault(tier, op, ordinal, kind);
        }
        b.build()
    }

    /// Called by a tier before performing an operation: advances that
    /// tier's op counter and returns the fault to apply, if one is due.
    pub fn next_op(&self, tier: &'static str, op: OpKind) -> Option<FaultKind> {
        let mut state = self.state.lock();
        let counter = state.counters.entry((tier, op)).or_insert(0);
        let ordinal = *counter;
        *counter += 1;
        let kind = self.scheduled.get(&(tier, op, ordinal)).copied()?;
        state.fired.push(FiredFault {
            tier,
            op,
            ordinal,
            kind,
        });
        Some(kind)
    }

    /// Every scheduled fault, sorted (tier, op, ordinal).
    pub fn scheduled(&self) -> Vec<FaultSpec> {
        let mut out: Vec<FaultSpec> = self
            .scheduled
            .iter()
            .map(|(&(tier, op, ordinal), &kind)| FaultSpec {
                tier,
                op,
                ordinal,
                kind,
            })
            .collect();
        out.sort_by_key(|s| (s.tier, s.op, s.ordinal));
        out
    }

    /// Faults that have fired so far, sorted (tier, op, ordinal) so the
    /// result is independent of thread interleaving.
    pub fn fired(&self) -> Vec<FiredFault> {
        let mut out = self.state.lock().fired.clone();
        out.sort();
        out
    }

    /// Total operations observed per (tier, op kind), sorted.
    pub fn op_counts(&self) -> Vec<((&'static str, OpKind), u64)> {
        let mut out: Vec<_> = self
            .state
            .lock()
            .counters
            .iter()
            .map(|(&k, &v)| (k, v))
            .collect();
        out.sort();
        out
    }
}

/// Builder for explicit fault schedules.
#[derive(Default)]
pub struct FaultPlanBuilder {
    scheduled: HashMap<(&'static str, OpKind, u64), FaultKind>,
}

impl FaultPlanBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `kind` for the `ordinal`-th `op` on `tier` (0-based). A
    /// later spec for the same slot replaces the earlier one.
    pub fn fault(mut self, tier: &'static str, op: OpKind, ordinal: u64, kind: FaultKind) -> Self {
        self.scheduled.insert((tier, op, ordinal), kind);
        self
    }

    /// Shorthand: fault the `ordinal`-th put on `tier`.
    pub fn on_put(self, tier: &'static str, ordinal: u64, kind: FaultKind) -> Self {
        self.fault(tier, OpKind::Put, ordinal, kind)
    }

    /// Shorthand: fault the `ordinal`-th get on `tier`.
    pub fn on_get(self, tier: &'static str, ordinal: u64, kind: FaultKind) -> Self {
        self.fault(tier, OpKind::Get, ordinal, kind)
    }

    pub fn build(self) -> Arc<FaultPlan> {
        Arc::new(FaultPlan {
            scheduled: self.scheduled,
            state: Mutex::new(PlanState::default()),
        })
    }
}

/// Apply a latency-spike fault (the only kind with a time component);
/// callers handle the rest inline. Kept here so the sleep policy lives next
/// to the taxonomy.
pub(crate) fn apply_latency(kind: &FaultKind) {
    if let FaultKind::LatencySpike { micros } = kind {
        std::thread::sleep(Duration::from_micros(*micros as u64));
    }
}

/// SplitMix64: tiny deterministic generator for seeded plans (and for the
/// crash-consistency harness's schedules).
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_fire_on_exact_ordinals() {
        let plan = FaultPlan::builder()
            .on_put("ssd", 1, FaultKind::TransientIo)
            .on_get("ssd", 0, FaultKind::TransientIo)
            .build();
        assert_eq!(plan.next_op("ssd", OpKind::Put), None); // op 0
        assert_eq!(
            plan.next_op("ssd", OpKind::Put),
            Some(FaultKind::TransientIo) // op 1
        );
        assert_eq!(plan.next_op("ssd", OpKind::Put), None); // op 2
                                                            // Get counters are independent of put counters.
        assert_eq!(
            plan.next_op("ssd", OpKind::Get),
            Some(FaultKind::TransientIo)
        );
        // Other tiers are untouched.
        assert_eq!(plan.next_op("host", OpKind::Put), None);
        assert_eq!(plan.fired().len(), 2);
    }

    #[test]
    fn seeded_plans_are_reproducible() {
        let a = FaultPlan::from_seed(1234, 16, 100);
        let b = FaultPlan::from_seed(1234, 16, 100);
        assert_eq!(a.scheduled(), b.scheduled());
        assert!(!a.scheduled().is_empty());
        let c = FaultPlan::from_seed(1235, 16, 100);
        assert_ne!(a.scheduled(), c.scheduled());
    }

    /// The same total operation sequence fires the same fault set no matter
    /// how many threads issue the operations: firing depends only on
    /// per-tier op ordinals.
    #[test]
    fn firing_is_deterministic_across_thread_counts() {
        let total_ops = 64u64;
        let mk = || FaultPlan::from_seed(77, 24, total_ops);
        let mut baselines = Vec::new();
        for threads in [1usize, 2, 4, 8] {
            let plan = mk();
            std::thread::scope(|s| {
                for t in 0..threads {
                    let plan = &plan;
                    let per = total_ops as usize / threads;
                    s.spawn(move || {
                        for _ in 0..per {
                            let _ = plan.next_op("host", OpKind::Put);
                            let _ = plan.next_op("ssd", OpKind::Put);
                            let _ = plan.next_op("ssd", OpKind::Get);
                            let _ = plan.next_op("pfs", OpKind::Put);
                        }
                        let _ = t;
                    });
                }
            });
            baselines.push((threads, plan.fired(), plan.op_counts()));
        }
        let (_, ref fired1, ref counts1) = baselines[0];
        for (threads, fired, counts) in &baselines[1..] {
            assert_eq!(fired, fired1, "fired set diverged at {threads} threads");
            assert_eq!(counts, counts1, "op counts diverged at {threads} threads");
        }
    }

    #[test]
    fn splitmix_is_stable() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next(), b.next());
        }
    }
}
