//! Double-buffered checkpoint submission: overlap checkpoint *i*'s
//! serialize → D2H → runtime-submit tail with checkpoint *i+1*'s hashing.
//!
//! The de-duplication front half of a checkpoint (leaf hashing, the
//! consolidation waves) must run on the device before anything can be
//! emitted, but the tail — encoding the diff to wire format and staging it
//! into the runtime's host tier — only needs the finished diff. This
//! pipeline moves that tail onto a dedicated thread behind a **depth-1
//! bounded channel**, which is exactly a double buffer:
//!
//! * slot A: the tail the worker is currently encoding/submitting;
//! * slot B: the one finished diff the producer may park in the channel.
//!
//! A producer that finishes a third diff while both slots are occupied
//! blocks in [`submit_with`](CheckpointPipeline::submit_with) — that wait is
//! recorded as the `pipeline/enqueue_wait` span, so telemetry distinguishes
//! "overlap achieved" (near-zero wait, `pipeline/inflight` reaching 2) from
//! "tail-bound" (producer stalls on the handoff).
//!
//! # Handoff contract
//!
//! The `produce` closure passed to `submit_with` owns everything the tail
//! needs — typically the diff plus any device-arena leases backing it. The
//! worker runs the closure exactly once (encode + D2H) and submits the bytes
//! to the [`AsyncRuntime`]; the closure's captures are dropped when it
//! returns, so arena leases flow back to the pool from the worker thread.
//! If the pipeline is torn down with jobs still queued, the unrun closures
//! are *dropped* (their captures released, their submissions counted in
//! `aborted`) — a closure is never run twice and never leaks its lease, even
//! when a [`kill`](AsyncRuntime::kill) lands mid-overlap.

use crate::runtime::AsyncRuntime;
use crossbeam::channel::{bounded, Receiver, SyncSender};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Deferred tail work: encodes the checkpoint to wire bytes. Owns the diff
/// and any arena leases; both are released when the closure is consumed (run
/// or dropped).
pub type ProduceFn = Box<dyn FnOnce() -> Vec<u8> + Send>;

struct Job {
    rank: u32,
    ckpt_id: u32,
    produce: ProduceFn,
}

/// Final accounting returned by [`CheckpointPipeline::close`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineStats {
    /// Checkpoints accepted by the runtime's host tier.
    pub submitted: u64,
    /// Checkpoints whose tail ran but whose submit was refused (runtime
    /// killed or host tier full), plus jobs dropped unrun at teardown.
    pub aborted: u64,
    /// High-water mark of checkpoints handed to the pipeline but not yet
    /// submitted. Reaching 2 is the proof of overlap: one tail executing
    /// while the next diff was already handed off. The count includes a
    /// producer blocked in the handoff, so it is bounded by 3 (worker slot +
    /// channel slot + one blocked submitter), never more.
    pub max_inflight: u64,
}

struct Shared {
    submitted: AtomicU64,
    aborted: AtomicU64,
    inflight: AtomicU64,
    max_inflight: AtomicU64,
}

/// The double-buffered submission tail over an [`AsyncRuntime`]. See the
/// module docs for the handoff contract.
pub struct CheckpointPipeline {
    rt: Arc<AsyncRuntime>,
    tx: Option<SyncSender<Job>>,
    worker: Option<JoinHandle<()>>,
    shared: Arc<Shared>,
}

impl CheckpointPipeline {
    pub fn new(rt: Arc<AsyncRuntime>) -> Self {
        // Depth 1 = the second buffer of the double buffer; the first is the
        // job the worker holds while running its tail.
        let (tx, rx): (SyncSender<Job>, Receiver<Job>) = bounded(1);
        let shared = Arc::new(Shared {
            submitted: AtomicU64::new(0),
            aborted: AtomicU64::new(0),
            inflight: AtomicU64::new(0),
            max_inflight: AtomicU64::new(0),
        });
        let worker = {
            let rt = Arc::clone(&rt);
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || worker_loop(rx, rt, shared))
        };
        CheckpointPipeline {
            rt,
            tx: Some(tx),
            worker: Some(worker),
            shared,
        }
    }

    /// Hand checkpoint (`rank`, `ckpt_id`) to the pipeline. Returns as soon
    /// as a buffer slot is free — immediately in steady overlap, blocking
    /// only when the producer is two whole checkpoints ahead of the tail.
    pub fn submit_with(&self, rank: u32, ckpt_id: u32, produce: ProduceFn) {
        let registry = Arc::clone(self.rt.telemetry());
        let depth = self.shared.inflight.fetch_add(1, Ordering::Relaxed) + 1;
        self.shared.max_inflight.fetch_max(depth, Ordering::Relaxed);
        registry.gauge("pipeline/inflight").set(depth as i64);
        let send_result = {
            let _wait = registry.span("pipeline/enqueue_wait");
            self.tx.as_ref().expect("pipeline closed").send(Job {
                rank,
                ckpt_id,
                produce,
            })
        };
        if send_result.is_err() {
            // Worker gone (panic); drop the unrun closure — captures (diff,
            // leases) are released right here on the producer thread.
            self.shared.inflight.fetch_sub(1, Ordering::Relaxed);
            self.shared.aborted.fetch_add(1, Ordering::Relaxed);
            registry.counter("pipeline/aborted").inc();
        }
    }

    /// Current in-flight depth (0, 1, or 2); test/telemetry helper.
    pub fn inflight(&self) -> u64 {
        self.shared.inflight.load(Ordering::Relaxed)
    }

    /// Drain remaining jobs, stop the worker, and report. Does **not**
    /// shut down the underlying runtime.
    pub fn close(mut self) -> PipelineStats {
        self.close_inner()
    }

    fn close_inner(&mut self) -> PipelineStats {
        drop(self.tx.take());
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
        self.rt.telemetry().gauge("pipeline/inflight").set(0);
        PipelineStats {
            submitted: self.shared.submitted.load(Ordering::Relaxed),
            aborted: self.shared.aborted.load(Ordering::Relaxed),
            max_inflight: self.shared.max_inflight.load(Ordering::Relaxed),
        }
    }
}

impl Drop for CheckpointPipeline {
    fn drop(&mut self) {
        if self.tx.is_some() || self.worker.is_some() {
            self.close_inner();
        }
    }
}

fn worker_loop(rx: Receiver<Job>, rt: Arc<AsyncRuntime>, shared: Arc<Shared>) {
    let registry = Arc::clone(rt.telemetry());
    while let Ok(job) = rx.recv() {
        let accepted = {
            let _tail = registry.span("pipeline/tail");
            let bytes = (job.produce)();
            rt.submit(job.rank, job.ckpt_id, bytes).is_ok()
        };
        if accepted {
            shared.submitted.fetch_add(1, Ordering::Relaxed);
            registry.counter("pipeline/submitted").inc();
        } else {
            shared.aborted.fetch_add(1, Ordering::Relaxed);
            registry.counter("pipeline/aborted").inc();
        }
        let depth = shared.inflight.fetch_sub(1, Ordering::Relaxed) - 1;
        registry.gauge("pipeline/inflight").set(depth as i64);
    }
    // Channel disconnected: nothing queued remains (recv drained it), so
    // every accepted job was consumed exactly once.
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::time::Duration;

    fn payload(tag: u8) -> Vec<u8> {
        vec![tag; 256]
    }

    #[test]
    fn submits_in_order_and_counts() {
        let rt = Arc::new(AsyncRuntime::new());
        let pipe = CheckpointPipeline::new(Arc::clone(&rt));
        for id in 0..4u32 {
            pipe.submit_with(0, id, Box::new(move || payload(id as u8)));
        }
        let stats = pipe.close();
        assert_eq!(stats.submitted, 4);
        assert_eq!(stats.aborted, 0);
        let ids: Vec<_> = (0..4).map(|i| (0, i)).collect();
        rt.wait_durable(&ids);
        assert!(rt.undrainable().is_empty());
        Arc::try_unwrap(rt).ok().unwrap().shutdown();
    }

    #[test]
    fn overlap_reaches_depth_two() {
        let rt = Arc::new(AsyncRuntime::new());
        let pipe = CheckpointPipeline::new(Arc::clone(&rt));
        // Slow tails force the producer ahead: while the worker encodes
        // checkpoint i, checkpoint i+1 parks in the channel slot.
        for id in 0..3u32 {
            pipe.submit_with(
                0,
                id,
                Box::new(move || {
                    std::thread::sleep(Duration::from_millis(20));
                    payload(id as u8)
                }),
            );
        }
        let stats = pipe.close();
        assert_eq!(stats.submitted, 3);
        assert!(
            stats.max_inflight >= 2,
            "depth-1 channel + worker slot must pipeline two checkpoints, saw {}",
            stats.max_inflight
        );
        assert!(
            stats.max_inflight <= 3,
            "double buffer + one blocked producer bounds in-flight at 3, saw {}",
            stats.max_inflight
        );
        Arc::try_unwrap(rt).ok().unwrap().shutdown();
    }

    #[test]
    fn unrun_closures_release_captures_on_teardown() {
        // A produce closure's captures must drop even if the closure never
        // runs (worker torn down first). Model the arena lease with a flag
        // set by a Drop guard.
        struct Guard(Arc<AtomicBool>);
        impl Drop for Guard {
            fn drop(&mut self) {
                self.0.store(true, Ordering::SeqCst);
            }
        }
        let released = Arc::new(AtomicBool::new(false));
        let guard = Guard(Arc::clone(&released));
        let produce: ProduceFn = Box::new(move || {
            let _g = guard;
            payload(0)
        });
        drop(produce);
        assert!(released.load(Ordering::SeqCst));
    }

    #[test]
    fn kill_mid_overlap_counts_aborts_not_hangs() {
        let rt = Arc::new(AsyncRuntime::new());
        rt.kill();
        let pipe = CheckpointPipeline::new(Arc::clone(&rt));
        for id in 0..3u32 {
            pipe.submit_with(0, id, Box::new(move || payload(id as u8)));
        }
        let stats = pipe.close();
        // Post-kill the host tier still accepts writes but the flusher is
        // gone; submits succeed or abort deterministically — either way the
        // pipeline drains and every job is accounted exactly once.
        assert_eq!(stats.submitted + stats.aborted, 3);
    }
}
