//! Deterministic block-parallel container around any [`Codec`].
//!
//! The flush pipeline compresses whole checkpoint objects on the host
//! work-stealing pool. A single `codec.compress(object)` call would
//! serialize that work on one worker, so this module splits the input into
//! fixed-size blocks, compresses each block independently with
//! `par_chunks`, and concatenates the results behind a small table of
//! contents. Block boundaries are a pure function of the input length and
//! the block size — never of the thread count — so the container bytes are
//! bit-identical at 1, 2, or N threads, and decompression parallelizes the
//! same way.
//!
//! Wire format (all integers little-endian):
//!
//! ```text
//! [n_blocks u32][block_size u32]
//! n_blocks × [comp_len u32][raw_len u32]     table of contents
//! n_blocks × comp_len bytes                  block payloads, in order
//! ```
//!
//! A block whose compressed form would not *shrink* is stored raw
//! (`comp_len == raw_len` marks a stored block), so the container never
//! expands the payload beyond the table-of-contents overhead — the `Store`
//! fallback the adaptive tier policy relies on.

use crate::{Codec, CorruptStream};
use rayon::prelude::*;

/// Default block size for object compression: large enough to amortize
/// per-block codec setup, small enough that a multi-megabyte checkpoint
/// object fans out across the pool.
pub const DEFAULT_BLOCK_SIZE: usize = 256 * 1024;

/// Container header: block count + block size.
const CONTAINER_HEADER: usize = 8;
/// Per-block table entry: compressed length + raw length.
const TOC_ENTRY: usize = 8;

/// Fixed container overhead for an input of `len` bytes at `block_size`.
pub fn container_overhead(len: usize, block_size: usize) -> usize {
    CONTAINER_HEADER + len.div_ceil(block_size.max(1)) * TOC_ENTRY
}

/// Compress `data` into a self-contained block container. Blocks compress
/// in parallel on the shared pool; output bytes are independent of the
/// thread count.
pub fn compress_blocks(codec: &dyn Codec, data: &[u8], block_size: usize) -> Vec<u8> {
    assert!(block_size > 0, "block_size must be positive");
    let blocks: Vec<Vec<u8>> = data
        .par_chunks(block_size)
        .map(|raw| {
            let packed = codec.compress(raw);
            // Store-fallback per block: never grow a block.
            if packed.len() < raw.len() {
                packed
            } else {
                raw.to_vec()
            }
        })
        .collect();
    let n_blocks = data.len().div_ceil(block_size);
    debug_assert_eq!(blocks.len(), n_blocks);
    let body: usize = blocks.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(CONTAINER_HEADER + n_blocks * TOC_ENTRY + body);
    out.extend_from_slice(&(n_blocks as u32).to_le_bytes());
    out.extend_from_slice(&(block_size as u32).to_le_bytes());
    for (i, packed) in blocks.iter().enumerate() {
        let raw_len = block_size.min(data.len() - i * block_size);
        out.extend_from_slice(&(packed.len() as u32).to_le_bytes());
        out.extend_from_slice(&(raw_len as u32).to_le_bytes());
    }
    for packed in &blocks {
        out.extend_from_slice(packed);
    }
    out
}

/// Invert [`compress_blocks`]. Every table entry is validated against the
/// remaining buffer *before* any block is decoded or any output allocated,
/// so a corrupt length field fails typed instead of over-allocating.
pub fn decompress_blocks(codec: &dyn Codec, data: &[u8]) -> Result<Vec<u8>, CorruptStream> {
    if data.len() < CONTAINER_HEADER {
        return Err(CorruptStream("block container shorter than its header"));
    }
    let n_blocks = u32::from_le_bytes(data[0..4].try_into().unwrap()) as usize;
    let block_size = u32::from_le_bytes(data[4..8].try_into().unwrap()) as usize;
    if block_size == 0 && n_blocks > 0 {
        return Err(CorruptStream("zero block size with nonzero block count"));
    }
    let toc_end = CONTAINER_HEADER
        .checked_add(
            n_blocks
                .checked_mul(TOC_ENTRY)
                .ok_or(CorruptStream("block count overflows the table of contents"))?,
        )
        .ok_or(CorruptStream("block count overflows the table of contents"))?;
    if data.len() < toc_end {
        return Err(CorruptStream("table of contents truncated"));
    }
    // Validate the whole table before decoding: every entry in bounds,
    // every raw length within one block, payload bytes exactly accounted.
    let mut entries = Vec::with_capacity(n_blocks);
    let mut offset = toc_end;
    for i in 0..n_blocks {
        let at = CONTAINER_HEADER + i * TOC_ENTRY;
        let comp_len = u32::from_le_bytes(data[at..at + 4].try_into().unwrap()) as usize;
        let raw_len = u32::from_le_bytes(data[at + 4..at + 8].try_into().unwrap()) as usize;
        if raw_len > block_size || (i + 1 < n_blocks && raw_len != block_size) {
            return Err(CorruptStream("block raw length exceeds the block size"));
        }
        if comp_len > raw_len {
            return Err(CorruptStream(
                "block compressed length exceeds its raw length",
            ));
        }
        if comp_len > data.len() - offset {
            return Err(CorruptStream("block payload extends past the container"));
        }
        entries.push((offset, comp_len, raw_len));
        offset += comp_len;
    }
    if offset != data.len() {
        return Err(CorruptStream("trailing bytes after the last block"));
    }
    let parts: Vec<Result<Vec<u8>, CorruptStream>> = entries
        .par_iter()
        .map(|&(off, comp_len, raw_len)| {
            let packed = &data[off..off + comp_len];
            let raw = if comp_len == raw_len {
                packed.to_vec() // stored block
            } else {
                codec.decompress(packed)?
            };
            if raw.len() != raw_len {
                return Err(CorruptStream("block decoded to the wrong length"));
            }
            Ok(raw)
        })
        .collect();
    let mut out = Vec::with_capacity(entries.iter().map(|e| e.2).sum());
    for part in parts {
        out.extend_from_slice(&part?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{all_codecs, ZstdLike};

    #[test]
    fn round_trips_across_block_boundaries() {
        let codec = ZstdLike::default();
        let data: Vec<u8> = (0..300_000u32)
            .flat_map(|i| (i / 9).to_le_bytes())
            .collect();
        for block_size in [1, 7, 4096, DEFAULT_BLOCK_SIZE, data.len(), data.len() * 2] {
            let packed = compress_blocks(&codec, &data, block_size);
            assert_eq!(
                decompress_blocks(&codec, &packed).unwrap(),
                data,
                "block_size {block_size}"
            );
        }
    }

    #[test]
    fn empty_input_is_a_bare_header() {
        let codec = ZstdLike::default();
        let packed = compress_blocks(&codec, &[], DEFAULT_BLOCK_SIZE);
        assert_eq!(packed.len(), CONTAINER_HEADER);
        assert_eq!(
            decompress_blocks(&codec, &packed).unwrap(),
            Vec::<u8>::new()
        );
    }

    #[test]
    fn container_never_expands_beyond_overhead() {
        // Incompressible bytes: every block falls back to stored form.
        let data: Vec<u8> = (0..100_000u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        for codec in all_codecs() {
            let packed = compress_blocks(&*codec, &data, 16 * 1024);
            assert!(
                packed.len() <= data.len() + container_overhead(data.len(), 16 * 1024),
                "{} grew the container to {}",
                codec.name(),
                packed.len()
            );
            assert_eq!(decompress_blocks(&*codec, &packed).unwrap(), data);
        }
    }

    #[test]
    fn output_is_thread_count_independent() {
        let codec = ZstdLike::default();
        let data: Vec<u8> = (0..1_000_000u32).map(|i| ((i / 40) % 97) as u8).collect();
        let mut outputs = Vec::new();
        for threads in [1, 2, 8] {
            rayon::set_active_threads(threads);
            outputs.push(compress_blocks(&codec, &data, DEFAULT_BLOCK_SIZE));
        }
        rayon::set_active_threads(0);
        assert_eq!(outputs[0], outputs[1]);
        assert_eq!(outputs[0], outputs[2]);
    }

    #[test]
    fn corrupt_tables_fail_typed_not_panic() {
        let codec = ZstdLike::default();
        let data = vec![7u8; 100_000];
        let packed = compress_blocks(&codec, &data, 16 * 1024);
        // Truncations at every prefix length parse as errors, never panic.
        for keep in 0..packed.len().min(64) {
            assert!(decompress_blocks(&codec, &packed[..keep]).is_err());
        }
        // A table entry claiming a huge raw length must not allocate it.
        let mut bad = packed.clone();
        bad[CONTAINER_HEADER + 4..CONTAINER_HEADER + 8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decompress_blocks(&codec, &bad).is_err());
        // A block count far past the buffer fails the bounds check.
        let mut bad = packed.clone();
        bad[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decompress_blocks(&codec, &bad).is_err());
    }
}
