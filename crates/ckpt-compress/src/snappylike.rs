//! Snappy-like codec: single-probe greedy LZ77 with tag bytes.
//!
//! Tuned like Snappy: speed over ratio — the match finder probes one hash
//! slot only. Element framing: tag byte `t`:
//! * `t & 1 == 0` — literal run of `(t >> 1) + 1` bytes (1..=128);
//! * `t & 1 == 1` — copy of `((t >> 1) & 0x3f) + 4` bytes (4..=67) from a
//!   little-endian `u16` offset that follows.
//!
//! Block prefix: varint uncompressed length.

use crate::lz::{find_sequences, get_varint, put_varint, MatchConfig};
use crate::{Codec, CorruptStream};

/// Snappy-like fast LZ codec.
#[derive(Debug, Clone, Copy)]
pub struct SnappyLike {
    cfg: MatchConfig,
}

impl Default for SnappyLike {
    fn default() -> Self {
        SnappyLike {
            cfg: MatchConfig::snappy(),
        }
    }
}

const MIN_COPY: usize = 4;
const MAX_COPY: usize = 67;
const MAX_LIT: usize = 128;

impl Codec for SnappyLike {
    fn name(&self) -> &'static str {
        "snappy"
    }

    fn compress(&self, data: &[u8]) -> Vec<u8> {
        debug_assert!(self.cfg.max_match <= MAX_COPY);
        let mut out = Vec::with_capacity(data.len() / 2 + 16);
        put_varint(&mut out, data.len() as u64);
        for s in find_sequences(data, &self.cfg) {
            // Literals, 128 at a time.
            let mut lit = &data[s.lit_start..s.lit_start + s.lit_len];
            while !lit.is_empty() {
                let n = lit.len().min(MAX_LIT);
                out.push(((n - 1) as u8) << 1);
                out.extend_from_slice(&lit[..n]);
                lit = &lit[n..];
            }
            if s.match_len > 0 {
                debug_assert!((MIN_COPY..=MAX_COPY).contains(&s.match_len));
                out.push((((s.match_len - MIN_COPY) as u8) << 1) | 1);
                out.extend_from_slice(&(s.offset as u16).to_le_bytes());
            }
        }
        out
    }

    fn decompress(&self, data: &[u8]) -> Result<Vec<u8>, CorruptStream> {
        let mut pos = 0usize;
        let raw_len = get_varint(data, &mut pos)? as usize;
        let mut out = Vec::with_capacity(raw_len);
        while out.len() < raw_len {
            if pos >= data.len() {
                return Err(CorruptStream("snappy block truncated"));
            }
            let tag = data[pos];
            pos += 1;
            if tag & 1 == 0 {
                let n = ((tag >> 1) as usize) + 1;
                if pos + n > data.len() {
                    return Err(CorruptStream("snappy literals truncated"));
                }
                out.extend_from_slice(&data[pos..pos + n]);
                pos += n;
            } else {
                let n = (((tag >> 1) & 0x3f) as usize) + MIN_COPY;
                if pos + 2 > data.len() {
                    return Err(CorruptStream("snappy offset truncated"));
                }
                let offset = u16::from_le_bytes(data[pos..pos + 2].try_into().unwrap()) as usize;
                pos += 2;
                if offset == 0 || offset > out.len() {
                    return Err(CorruptStream("snappy offset out of range"));
                }
                for _ in 0..n {
                    let b = out[out.len() - offset];
                    out.push(b);
                }
            }
        }
        if out.len() != raw_len {
            return Err(CorruptStream("snappy length mismatch"));
        }
        Ok(out)
    }

    fn flops_per_byte(&self) -> f64 {
        4.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn codec() -> SnappyLike {
        SnappyLike::default()
    }

    #[test]
    fn repetitive_shrinks() {
        let data = b"0123456789abcdef".repeat(200);
        let packed = codec().compress(&data);
        assert!(packed.len() < data.len() / 3);
        assert_eq!(codec().decompress(&packed).unwrap(), data);
    }

    #[test]
    fn weaker_than_lz4_on_text() {
        // Sanity: the family ordering the docs promise.
        let data: Vec<u8> = (0..20_000u32)
            .flat_map(|i| format!("record {} value {}\n", i % 100, i % 7).into_bytes())
            .collect();
        let sn = codec().compress(&data).len();
        let lz = crate::Lz4Like::default().compress(&data).len();
        assert!(lz <= sn, "lz4 {} vs snappy {}", lz, sn);
    }

    #[test]
    fn bad_tag_stream_rejected() {
        let mut bytes = Vec::new();
        put_varint(&mut bytes, 50);
        bytes.push(0x01); // copy of 4 from offset...
        bytes.extend_from_slice(&9999u16.to_le_bytes()); // before start
        assert!(codec().decompress(&bytes).is_err());
    }

    proptest! {
        #[test]
        fn round_trip_any(data in prop::collection::vec(any::<u8>(), 0..4096)) {
            let packed = codec().compress(&data);
            prop_assert_eq!(codec().decompress(&packed).unwrap(), data);
        }

        #[test]
        fn round_trip_runs(data in prop::collection::vec(0u8..2, 0..4096)) {
            let packed = codec().compress(&data);
            prop_assert_eq!(codec().decompress(&packed).unwrap(), data);
        }
    }
}
