//! Deflate-like and Zstd-like codecs: LZ77 parsing plus a canonical-Huffman
//! entropy stage over the literal stream.
//!
//! Both share one container format and differ only in their match-finder
//! tuning, mirroring the real algorithms' relationship (Zstd searches a much
//! larger window more thoroughly, so it finds more redundancy at higher
//! compute cost):
//!
//! ```text
//! varint raw_len | varint n_seq
//! varint lit_block_len | huffman(literal bytes)
//! per sequence: varint lit_len, varint match_len, varint offset
//! ```

use crate::huffman;
use crate::lz::{find_sequences, get_varint, put_varint, MatchConfig};
use crate::{Codec, CorruptStream};

fn compress_with(cfg: &MatchConfig, data: &[u8]) -> Vec<u8> {
    let seqs = find_sequences(data, cfg);

    // Literal stream: concatenation of all sequences' literal runs.
    let mut literals = Vec::new();
    for s in &seqs {
        literals.extend_from_slice(&data[s.lit_start..s.lit_start + s.lit_len]);
    }
    let lit_block = huffman::encode(&literals);

    let mut out = Vec::with_capacity(lit_block.len() + seqs.len() * 4 + 16);
    put_varint(&mut out, data.len() as u64);
    put_varint(&mut out, seqs.len() as u64);
    put_varint(&mut out, lit_block.len() as u64);
    out.extend_from_slice(&lit_block);
    for s in &seqs {
        put_varint(&mut out, s.lit_len as u64);
        put_varint(&mut out, s.match_len as u64);
        put_varint(&mut out, s.offset as u64);
    }
    out
}

fn decompress_with(data: &[u8]) -> Result<Vec<u8>, CorruptStream> {
    let mut pos = 0usize;
    let raw_len = get_varint(data, &mut pos)? as usize;
    let n_seq = get_varint(data, &mut pos)? as usize;
    let lit_block_len = get_varint(data, &mut pos)? as usize;
    if pos + lit_block_len > data.len() {
        return Err(CorruptStream("literal block truncated"));
    }
    let literals = huffman::decode(&data[pos..pos + lit_block_len])?;
    pos += lit_block_len;

    let mut out = Vec::with_capacity(raw_len);
    let mut lit_pos = 0usize;
    for _ in 0..n_seq {
        let lit_len = get_varint(data, &mut pos)? as usize;
        let match_len = get_varint(data, &mut pos)? as usize;
        let offset = get_varint(data, &mut pos)? as usize;
        if lit_pos + lit_len > literals.len() {
            return Err(CorruptStream("literal stream exhausted"));
        }
        out.extend_from_slice(&literals[lit_pos..lit_pos + lit_len]);
        lit_pos += lit_len;
        if match_len > 0 {
            if offset == 0 || offset > out.len() {
                return Err(CorruptStream("offset out of range"));
            }
            if out.len() + match_len > raw_len {
                return Err(CorruptStream("match overruns block"));
            }
            for _ in 0..match_len {
                let b = out[out.len() - offset];
                out.push(b);
            }
        }
    }
    if out.len() != raw_len {
        return Err(CorruptStream("length mismatch"));
    }
    Ok(out)
}

/// Deflate-like codec (32 KiB window LZSS + Huffman literals).
#[derive(Debug, Clone, Copy)]
pub struct DeflateLike {
    cfg: MatchConfig,
}

impl Default for DeflateLike {
    fn default() -> Self {
        DeflateLike {
            cfg: MatchConfig::deflate(),
        }
    }
}

impl Codec for DeflateLike {
    fn name(&self) -> &'static str {
        "deflate"
    }

    fn compress(&self, data: &[u8]) -> Vec<u8> {
        compress_with(&self.cfg, data)
    }

    fn decompress(&self, data: &[u8]) -> Result<Vec<u8>, CorruptStream> {
        decompress_with(data)
    }

    fn flops_per_byte(&self) -> f64 {
        20.0
    }
}

/// Zstd-like codec (1 MiB window, deep chains + Huffman literals).
#[derive(Debug, Clone, Copy)]
pub struct ZstdLike {
    cfg: MatchConfig,
}

impl Default for ZstdLike {
    fn default() -> Self {
        ZstdLike {
            cfg: MatchConfig::zstd(),
        }
    }
}

impl Codec for ZstdLike {
    fn name(&self) -> &'static str {
        "zstd"
    }

    fn compress(&self, data: &[u8]) -> Vec<u8> {
        compress_with(&self.cfg, data)
    }

    fn decompress(&self, data: &[u8]) -> Result<Vec<u8>, CorruptStream> {
        decompress_with(data)
    }

    fn flops_per_byte(&self) -> f64 {
        12.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn text_round_trip_both() {
        let data =
            b"the paper proposes a merkle tree based incremental checkpointing method ".repeat(200);
        for codec in [&DeflateLike::default() as &dyn Codec, &ZstdLike::default()] {
            let packed = codec.compress(&data);
            assert!(
                packed.len() < data.len() / 8,
                "{}: {}",
                codec.name(),
                packed.len()
            );
            assert_eq!(codec.decompress(&packed).unwrap(), data);
        }
    }

    #[test]
    fn zstd_beats_deflate_beyond_deflate_window() {
        // Redundancy at > 32 KiB distance is invisible to the deflate-like
        // window but visible to the zstd-like one.
        let block: Vec<u8> = (0..48_000u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 9) as u8)
            .collect();
        let mut data = block.clone();
        data.extend_from_slice(&block);
        let d = DeflateLike::default().compress(&data).len();
        let z = ZstdLike::default().compress(&data).len();
        assert!(z < d * 3 / 4, "zstd {z} vs deflate {d}");
        assert_eq!(
            ZstdLike::default()
                .decompress(&ZstdLike::default().compress(&data))
                .unwrap(),
            data
        );
    }

    #[test]
    fn entropy_stage_helps_on_skewed_literals() {
        // Incompressible by LZ (no repeats) but highly skewed bytes.
        let data: Vec<u8> = (0..30_000u32)
            .map(|i| {
                let r = i.wrapping_mul(2654435761) >> 24;
                if r < 200 {
                    b'a'
                } else {
                    (r % 256) as u8
                }
            })
            .collect();
        let packed = DeflateLike::default().compress(&data);
        assert!(packed.len() < data.len() * 2 / 3, "packed {}", packed.len());
        assert_eq!(DeflateLike::default().decompress(&packed).unwrap(), data);
    }

    #[test]
    fn corrupt_container_rejected() {
        let data = b"abc".repeat(100);
        let packed = DeflateLike::default().compress(&data);
        assert!(DeflateLike::default().decompress(&packed[..5]).is_err());
        let mut broken = packed.clone();
        let n = broken.len();
        broken.truncate(n - 2);
        assert!(DeflateLike::default().decompress(&broken).is_err());
    }

    proptest! {
        #[test]
        fn round_trip_any(data in prop::collection::vec(any::<u8>(), 0..4096)) {
            for codec in [&DeflateLike::default() as &dyn Codec, &ZstdLike::default()] {
                let packed = codec.compress(&data);
                prop_assert_eq!(codec.decompress(&packed).unwrap(), data.clone());
            }
        }

        #[test]
        fn round_trip_structured(vals in prop::collection::vec(0u32..50, 0..1024)) {
            let data: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
            for codec in [&DeflateLike::default() as &dyn Codec, &ZstdLike::default()] {
                let packed = codec.compress(&data);
                prop_assert_eq!(codec.decompress(&packed).unwrap(), data.clone());
            }
        }
    }
}
