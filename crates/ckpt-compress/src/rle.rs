//! PackBits-style run-length coding.
//!
//! Control byte `c`:
//! * `c < 128`  — literal run: the next `c + 1` bytes are copied verbatim;
//! * `c ≥ 128`  — repeat run: the next byte repeats `c - 126` times
//!   (run lengths 2..=129).
//!
//! Worst case (no runs) costs one control byte per 128 literals (< 1%
//! expansion). GDV counter arrays, which are mostly zero early in a run,
//! compress extremely well.

use crate::{Codec, CorruptStream};

/// PackBits-style run-length codec.
#[derive(Debug, Clone, Copy, Default)]
pub struct Rle;

const MAX_LITERAL: usize = 128;
const MAX_RUN: usize = 129;

impl Codec for Rle {
    fn name(&self) -> &'static str {
        "rle"
    }

    fn compress(&self, data: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(data.len() / 4 + 16);
        let mut i = 0;
        let mut lit_start = 0;

        let flush_literals = |out: &mut Vec<u8>, from: usize, to: usize| {
            let mut s = from;
            while s < to {
                let n = (to - s).min(MAX_LITERAL);
                out.push((n - 1) as u8);
                out.extend_from_slice(&data[s..s + n]);
                s += n;
            }
        };

        while i < data.len() {
            // Measure the run starting at i.
            let b = data[i];
            let mut run = 1;
            while i + run < data.len() && data[i + run] == b && run < MAX_RUN {
                run += 1;
            }
            if run >= 2 {
                flush_literals(&mut out, lit_start, i);
                out.push((run + 126) as u8);
                out.push(b);
                i += run;
                lit_start = i;
            } else {
                i += 1;
            }
        }
        flush_literals(&mut out, lit_start, data.len());
        out
    }

    fn decompress(&self, data: &[u8]) -> Result<Vec<u8>, CorruptStream> {
        let mut out = Vec::with_capacity(data.len() * 2);
        let mut i = 0;
        while i < data.len() {
            let c = data[i] as usize;
            i += 1;
            if c < 128 {
                let n = c + 1;
                if i + n > data.len() {
                    return Err(CorruptStream("rle literal run past end"));
                }
                out.extend_from_slice(&data[i..i + n]);
                i += n;
            } else {
                if i >= data.len() {
                    return Err(CorruptStream("rle repeat run missing byte"));
                }
                let n = c - 126;
                let b = data[i];
                i += 1;
                out.extend(std::iter::repeat_n(b, n));
            }
        }
        Ok(out)
    }

    fn flops_per_byte(&self) -> f64 {
        2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constant_run() {
        let data = vec![7u8; 1000];
        let packed = Rle.compress(&data);
        assert!(packed.len() <= 2 * 1000_usize.div_ceil(MAX_RUN) + 2);
        assert_eq!(Rle.decompress(&packed).unwrap(), data);
    }

    #[test]
    fn incompressible_expands_less_than_one_percent() {
        let data: Vec<u8> = (0..10_000u32)
            .map(|i| (i.wrapping_mul(97) % 251) as u8)
            .collect();
        let packed = Rle.compress(&data);
        assert!(packed.len() <= data.len() + data.len() / 100 + 2);
        assert_eq!(Rle.decompress(&packed).unwrap(), data);
    }

    #[test]
    fn two_byte_runs_are_encoded() {
        let data = b"aabbccddee".to_vec();
        let packed = Rle.compress(&data);
        assert_eq!(Rle.decompress(&packed).unwrap(), data);
        assert_eq!(packed.len(), 10); // five repeat runs of 2, each 2 bytes
    }

    #[test]
    fn corrupt_streams_are_rejected() {
        assert!(Rle.decompress(&[5]).is_err()); // literal run of 6 with no bytes
        assert!(Rle.decompress(&[200]).is_err()); // repeat run missing byte
    }

    proptest! {
        #[test]
        fn round_trip(data in prop::collection::vec(any::<u8>(), 0..4096)) {
            let packed = Rle.compress(&data);
            prop_assert_eq!(Rle.decompress(&packed).unwrap(), data);
        }

        #[test]
        fn round_trip_runny(data in prop::collection::vec(0u8..4, 0..4096)) {
            let packed = Rle.compress(&data);
            prop_assert_eq!(Rle.decompress(&packed).unwrap(), data);
        }
    }
}
