//! Bit-granular readers and writers (LSB-first), shared by the Huffman and
//! bit-packing codecs.

use crate::CorruptStream;

/// Writes bits LSB-first into a byte vector.
#[derive(Debug, Default)]
pub struct BitWriter {
    out: Vec<u8>,
    /// Bits accumulated but not yet flushed (low bits are oldest).
    acc: u64,
    /// Number of valid bits in `acc` (< 8 after every `push`).
    n_bits: u32,
}

impl BitWriter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Append the low `n` bits of `value` (`n ≤ 57`).
    #[inline]
    pub fn write(&mut self, value: u64, n: u32) {
        debug_assert!(n <= 57);
        debug_assert!(
            n == 64 || value < (1u64 << n),
            "value {value} exceeds {n} bits"
        );
        self.acc |= value << self.n_bits;
        self.n_bits += n;
        while self.n_bits >= 8 {
            self.out.push(self.acc as u8);
            self.acc >>= 8;
            self.n_bits -= 8;
        }
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> usize {
        self.out.len() * 8 + self.n_bits as usize
    }

    /// Flush the tail bits (zero-padded) and return the bytes.
    pub fn finish(mut self) -> Vec<u8> {
        if self.n_bits > 0 {
            self.out.push(self.acc as u8);
        }
        self.out
    }
}

/// Reads bits LSB-first from a byte slice.
#[derive(Debug)]
pub struct BitReader<'a> {
    data: &'a [u8],
    /// Next byte to load.
    pos: usize,
    acc: u64,
    n_bits: u32,
}

impl<'a> BitReader<'a> {
    pub fn new(data: &'a [u8]) -> Self {
        BitReader {
            data,
            pos: 0,
            acc: 0,
            n_bits: 0,
        }
    }

    #[inline]
    fn refill(&mut self) {
        while self.n_bits <= 56 && self.pos < self.data.len() {
            self.acc |= (self.data[self.pos] as u64) << self.n_bits;
            self.pos += 1;
            self.n_bits += 8;
        }
    }

    /// Read `n ≤ 57` bits. Bits past the end of the stream read as zero only
    /// within the final partial byte; reading past the padded end errors.
    #[inline]
    pub fn read(&mut self, n: u32) -> Result<u64, CorruptStream> {
        debug_assert!(n <= 57);
        self.refill();
        if self.n_bits < n {
            return Err(CorruptStream("bit stream exhausted"));
        }
        let v = if n == 0 {
            0
        } else {
            self.acc & ((1u64 << n) - 1)
        };
        self.acc >>= n;
        self.n_bits -= n;
        Ok(v)
    }

    /// Peek up to `n ≤ 57` bits without consuming (missing bits read as 0).
    #[inline]
    pub fn peek(&mut self, n: u32) -> u64 {
        self.refill();
        if n == 0 {
            return 0;
        }
        self.acc & ((1u64 << n) - 1)
    }

    /// Consume `n` bits previously peeked.
    #[inline]
    pub fn consume(&mut self, n: u32) -> Result<(), CorruptStream> {
        if self.n_bits < n {
            return Err(CorruptStream("bit stream exhausted"));
        }
        self.acc >>= n;
        self.n_bits -= n;
        Ok(())
    }

    /// Bits remaining (including zero padding of the final byte).
    pub fn remaining_bits(&self) -> usize {
        (self.data.len() - self.pos) * 8 + self.n_bits as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_various_widths() {
        let mut w = BitWriter::new();
        let values: Vec<(u64, u32)> = vec![
            (1, 1),
            (0, 1),
            (0b101, 3),
            (0xff, 8),
            (0x1234, 16),
            (0, 5),
            (0x1f_ffff_ffff, 37),
            (1, 1),
        ];
        for &(v, n) in &values {
            w.write(v, n);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &values {
            assert_eq!(r.read(n).unwrap(), v, "width {n}");
        }
    }

    #[test]
    fn exhaustion_errors() {
        let mut w = BitWriter::new();
        w.write(0b1011, 4);
        let bytes = w.finish(); // one byte: 4 data bits + 4 pad bits
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read(4).unwrap(), 0b1011);
        assert_eq!(r.read(4).unwrap(), 0); // padding readable as zeros
        assert!(r.read(1).is_err());
    }

    #[test]
    fn peek_consume() {
        let mut w = BitWriter::new();
        w.write(0xABCD, 16);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.peek(8), 0xCD);
        r.consume(8).unwrap();
        assert_eq!(r.peek(8), 0xAB);
        r.consume(8).unwrap();
        assert!(r.consume(1).is_err());
    }

    #[test]
    fn bit_len_tracks_writes() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write(1, 3);
        assert_eq!(w.bit_len(), 3);
        w.write(0x7f, 7);
        assert_eq!(w.bit_len(), 10);
    }

    #[test]
    fn long_stream_round_trip() {
        let mut w = BitWriter::new();
        for i in 0..10_000u64 {
            w.write(i % 32, 5);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for i in 0..10_000u64 {
            assert_eq!(r.read(5).unwrap(), i % 32);
        }
    }
}
