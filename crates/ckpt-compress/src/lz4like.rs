//! LZ4-like codec: byte-aligned LZ77 with the classic token format.
//!
//! Block layout: varint uncompressed length, then sequences of
//! `token | literals | offset(u16) | extensions`. The token packs the
//! literal length in its high nibble and `match_len - 4` in its low nibble;
//! value 15 in either nibble chains into 255-valued extension bytes, exactly
//! like real LZ4. The final sequence carries literals only (offset omitted).

use crate::lz::{find_sequences, get_varint, put_varint, MatchConfig};
use crate::{Codec, CorruptStream};

/// LZ4-like byte-aligned LZ codec.
#[derive(Debug, Clone, Copy)]
pub struct Lz4Like {
    cfg: MatchConfig,
}

impl Default for Lz4Like {
    fn default() -> Self {
        Lz4Like {
            cfg: MatchConfig::lz4(),
        }
    }
}

const MIN_MATCH: usize = 4;

fn put_len(out: &mut Vec<u8>, mut extra: usize) {
    // Extension bytes after a nibble of 15: 255* then the remainder.
    while extra >= 255 {
        out.push(255);
        extra -= 255;
    }
    out.push(extra as u8);
}

fn get_len(data: &[u8], pos: &mut usize, nibble: usize) -> Result<usize, CorruptStream> {
    let mut len = nibble;
    if nibble == 15 {
        loop {
            if *pos >= data.len() {
                return Err(CorruptStream("lz4 length extension truncated"));
            }
            let b = data[*pos];
            *pos += 1;
            len += b as usize;
            if b != 255 {
                break;
            }
        }
    }
    Ok(len)
}

impl Codec for Lz4Like {
    fn name(&self) -> &'static str {
        "lz4"
    }

    fn compress(&self, data: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(data.len() / 2 + 16);
        put_varint(&mut out, data.len() as u64);
        let seqs = find_sequences(data, &self.cfg);
        for (k, s) in seqs.iter().enumerate() {
            let last = k == seqs.len() - 1;
            debug_assert_eq!(last, s.match_len == 0);
            let lit_nib = s.lit_len.min(15);
            let match_nib = if last {
                0
            } else {
                (s.match_len - MIN_MATCH).min(15)
            };
            out.push(((lit_nib as u8) << 4) | match_nib as u8);
            if lit_nib == 15 {
                put_len(&mut out, s.lit_len - 15);
            }
            out.extend_from_slice(&data[s.lit_start..s.lit_start + s.lit_len]);
            if !last {
                debug_assert!(s.offset > 0 && s.offset <= 0xFFFF);
                out.extend_from_slice(&(s.offset as u16).to_le_bytes());
                if match_nib == 15 {
                    put_len(&mut out, s.match_len - MIN_MATCH - 15);
                }
            }
        }
        out
    }

    fn decompress(&self, data: &[u8]) -> Result<Vec<u8>, CorruptStream> {
        let mut pos = 0usize;
        let raw_len = get_varint(data, &mut pos)? as usize;
        let mut out = Vec::with_capacity(raw_len);
        while out.len() < raw_len {
            if pos >= data.len() {
                return Err(CorruptStream("lz4 block truncated"));
            }
            let token = data[pos];
            pos += 1;
            let lit_len = get_len(data, &mut pos, (token >> 4) as usize)?;
            if pos + lit_len > data.len() {
                return Err(CorruptStream("lz4 literals truncated"));
            }
            out.extend_from_slice(&data[pos..pos + lit_len]);
            pos += lit_len;
            if out.len() >= raw_len {
                break; // final literal-only sequence
            }
            if pos + 2 > data.len() {
                return Err(CorruptStream("lz4 offset truncated"));
            }
            let offset = u16::from_le_bytes(data[pos..pos + 2].try_into().unwrap()) as usize;
            pos += 2;
            let match_len = get_len(data, &mut pos, (token & 0x0f) as usize)? + MIN_MATCH;
            if offset == 0 || offset > out.len() {
                return Err(CorruptStream("lz4 offset out of range"));
            }
            if out.len() + match_len > raw_len {
                return Err(CorruptStream("lz4 match overruns block"));
            }
            for _ in 0..match_len {
                let b = out[out.len() - offset];
                out.push(b);
            }
        }
        if out.len() != raw_len {
            return Err(CorruptStream("lz4 length mismatch"));
        }
        Ok(out)
    }

    fn flops_per_byte(&self) -> f64 {
        6.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn codec() -> Lz4Like {
        Lz4Like::default()
    }

    #[test]
    fn text_round_trip_and_shrinks() {
        let data = b"incremental checkpointing with gpu-accelerated de-duplication ".repeat(100);
        let packed = codec().compress(&data);
        assert!(packed.len() < data.len() / 5);
        assert_eq!(codec().decompress(&packed).unwrap(), data);
    }

    #[test]
    fn long_literal_runs_use_extensions() {
        // > 15 literals forces nibble escape.
        let data: Vec<u8> = (0..1000u32)
            .map(|i| (i.wrapping_mul(97) % 251) as u8)
            .collect();
        let packed = codec().compress(&data);
        assert_eq!(codec().decompress(&packed).unwrap(), data);
    }

    #[test]
    fn long_match_runs_use_extensions() {
        let data = vec![3u8; 5000];
        let packed = codec().compress(&data);
        assert!(packed.len() < 64);
        assert_eq!(codec().decompress(&packed).unwrap(), data);
    }

    #[test]
    fn corrupt_offset_rejected() {
        // literal token 0 + match with offset 0.
        let mut bytes = Vec::new();
        put_varint(&mut bytes, 100);
        bytes.push(0x00); // 0 literals, match_len nibble 0 (=4)
        bytes.extend_from_slice(&0u16.to_le_bytes());
        assert!(codec().decompress(&bytes).is_err());
    }

    #[test]
    fn truncation_never_panics_and_never_fabricates() {
        let data = b"hello world hello world hello world".to_vec();
        let packed = codec().compress(&data);
        for cut in 0..packed.len() {
            // Every truncation must either error or yield a prefix-exact
            // reconstruction (the final literal-only token is redundant when
            // a match already reached raw_len, so full equality is legal for
            // the last byte). It must never panic or return wrong bytes.
            if let Ok(out) = codec().decompress(&packed[..cut]) {
                assert_eq!(out, data, "cut {cut} produced wrong bytes");
                assert!(cut >= packed.len() - 1, "early cut {cut} decoded fully");
            }
        }
        assert!(codec().decompress(&[]).is_err());
    }

    proptest! {
        #[test]
        fn round_trip_any(data in prop::collection::vec(any::<u8>(), 0..4096)) {
            let packed = codec().compress(&data);
            prop_assert_eq!(codec().decompress(&packed).unwrap(), data);
        }

        #[test]
        fn round_trip_low_entropy(data in prop::collection::vec(0u8..3, 0..4096)) {
            let packed = codec().compress(&data);
            prop_assert_eq!(codec().decompress(&packed).unwrap(), data);
        }
    }
}
