//! Canonical Huffman coding over byte symbols (the entropy stage of the
//! Deflate-like and Zstd-like codecs).
//!
//! Encoded block layout: varint raw length, 256 nibble-packed code lengths
//! (128 bytes), then the LSB-first bit stream. Code lengths are limited to
//! [`MAX_BITS`]; skewed distributions are flattened (frequencies halved)
//! until the limit holds, which costs a fraction of a percent of ratio and
//! keeps the decoder table small.

use crate::bitio::{BitReader, BitWriter};
use crate::lz::{get_varint, put_varint};
use crate::CorruptStream;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Maximum code length.
pub const MAX_BITS: u32 = 15;

/// Compute length-limited canonical code lengths for the given frequencies.
///
/// Returns all-zero lengths when fewer than one symbol occurs; a single
/// occurring symbol gets length 1.
pub fn code_lengths(freqs: &[u64; 256]) -> [u8; 256] {
    let mut lens = [0u8; 256];
    let used: Vec<usize> = (0..256).filter(|&s| freqs[s] > 0).collect();
    if used.is_empty() {
        return lens;
    }
    if used.len() == 1 {
        lens[used[0]] = 1;
        return lens;
    }

    let mut f: Vec<u64> = used.iter().map(|&s| freqs[s]).collect();
    loop {
        // Standard heap-built Huffman tree over the used symbols.
        // Heap items: (weight, node id). Internal nodes get ids ≥ used.len().
        let n = f.len();
        let mut heap: BinaryHeap<Reverse<(u64, usize)>> = f
            .iter()
            .enumerate()
            .map(|(i, &w)| Reverse((w, i)))
            .collect();
        let mut parent = vec![usize::MAX; 2 * n - 1];
        let mut next_id = n;
        while heap.len() > 1 {
            let Reverse((wa, a)) = heap.pop().unwrap();
            let Reverse((wb, b)) = heap.pop().unwrap();
            parent[a] = next_id;
            parent[b] = next_id;
            heap.push(Reverse((wa + wb, next_id)));
            next_id += 1;
        }
        // Depth of each leaf = chain length to the root.
        let mut max_len = 0u32;
        let mut depths = vec![0u8; n];
        for (i, depth) in depths.iter_mut().enumerate() {
            let mut d = 0u32;
            let mut p = i;
            while parent[p] != usize::MAX {
                p = parent[p];
                d += 1;
            }
            *depth = d as u8;
            max_len = max_len.max(d);
        }
        if max_len <= MAX_BITS {
            for (k, &s) in used.iter().enumerate() {
                lens[s] = depths[k];
            }
            return lens;
        }
        // Flatten the distribution and retry.
        for w in f.iter_mut() {
            *w = (*w).div_ceil(2);
        }
    }
}

/// Assign canonical codes (MSB-first values) from code lengths.
/// Returns `(code, len)` per symbol.
pub fn canonical_codes(lens: &[u8; 256]) -> [(u16, u8); 256] {
    let mut codes = [(0u16, 0u8); 256];
    // Count codes per length.
    let mut bl_count = [0u16; (MAX_BITS + 1) as usize];
    for &l in lens.iter() {
        bl_count[l as usize] += 1;
    }
    bl_count[0] = 0;
    // First code of each length. u32 arithmetic so adversarial (corrupt)
    // length tables cannot overflow; valid tables always fit 15 bits.
    let mut next_code = [0u32; (MAX_BITS + 2) as usize];
    let mut code = 0u32;
    for bits in 1..=MAX_BITS as usize {
        code = (code + bl_count[bits - 1] as u32) << 1;
        next_code[bits] = code;
    }
    for s in 0..256 {
        let l = lens[s] as usize;
        if l > 0 {
            codes[s] = (next_code[l] as u16, l as u8);
            next_code[l] += 1;
        }
    }
    codes
}

#[inline]
fn reverse_bits(v: u16, n: u8) -> u16 {
    v.reverse_bits() >> (16 - n)
}

/// Encode `data` as a self-contained Huffman block.
pub fn encode(data: &[u8]) -> Vec<u8> {
    let mut freqs = [0u64; 256];
    for &b in data {
        freqs[b as usize] += 1;
    }
    let lens = code_lengths(&freqs);
    let codes = canonical_codes(&lens);

    let mut out = Vec::with_capacity(data.len() / 2 + 140);
    put_varint(&mut out, data.len() as u64);
    for pair in lens.chunks_exact(2) {
        out.push(pair[0] | (pair[1] << 4));
    }
    let mut w = BitWriter::new();
    for &b in data {
        let (code, len) = codes[b as usize];
        // Canonical codes are MSB-first; the bit stream is LSB-first, so
        // write the code reversed and the decoder's peek sees it in order.
        w.write(reverse_bits(code, len) as u64, len as u32);
    }
    out.extend_from_slice(&w.finish());
    out
}

/// Decode a block produced by [`encode`].
pub fn decode(data: &[u8]) -> Result<Vec<u8>, CorruptStream> {
    let mut pos = 0usize;
    let raw_len = get_varint(data, &mut pos)? as usize;
    if pos + 128 > data.len() {
        return Err(CorruptStream("huffman length table truncated"));
    }
    let mut lens = [0u8; 256];
    for s in 0..128 {
        let b = data[pos + s];
        lens[2 * s] = b & 0x0f;
        lens[2 * s + 1] = b >> 4;
    }
    pos += 128;

    if raw_len == 0 {
        return Ok(Vec::new());
    }

    // Build a flat lookup: MAX_BITS peeked bits -> (symbol, len).
    let codes = canonical_codes(&lens);
    let mut table = vec![(0u16, 0u8); 1 << MAX_BITS];
    let mut any = false;
    for (s, &(code, len)) in codes.iter().enumerate() {
        if len == 0 {
            continue;
        }
        any = true;
        let rev = reverse_bits(code, len);
        // All peeked patterns whose low `len` bits equal `rev`.
        let step = 1u32 << len;
        let mut p = rev as u32;
        while p < (1 << MAX_BITS) {
            table[p as usize] = (s as u16, len);
            p += step;
        }
    }
    if !any {
        return Err(CorruptStream("huffman block with data but no codes"));
    }

    let mut r = BitReader::new(&data[pos..]);
    let mut out = Vec::with_capacity(raw_len);
    for _ in 0..raw_len {
        let peeked = r.peek(MAX_BITS) as usize;
        let (sym, len) = table[peeked];
        if len == 0 {
            return Err(CorruptStream("huffman invalid code"));
        }
        r.consume(len as u32)
            .map_err(|_| CorruptStream("huffman bit stream exhausted"))?;
        out.push(sym as u8);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn skewed_text_compresses() {
        let data = b"aaaaaaaaaabbbbbcccdde".repeat(500);
        let packed = encode(&data);
        // Entropy ≈ 2 bits/byte on this alphabet: expect ~4x reduction
        // (header included).
        assert!(packed.len() < data.len() / 3, "packed {}", packed.len());
        assert_eq!(decode(&packed).unwrap(), data);
    }

    #[test]
    fn single_symbol_input() {
        let data = vec![7u8; 10_000];
        let packed = encode(&data);
        assert!(packed.len() < 1400); // 1 bit per symbol + header
        assert_eq!(decode(&packed).unwrap(), data);
    }

    #[test]
    fn empty_input() {
        let packed = encode(&[]);
        assert_eq!(decode(&packed).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn uniform_bytes_round_trip() {
        let data: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        let packed = encode(&data);
        assert_eq!(decode(&packed).unwrap(), data);
    }

    #[test]
    fn length_limit_holds_on_fibonacci_frequencies() {
        // Fibonacci frequencies generate maximally skewed code lengths —
        // the classic worst case for depth limits.
        let mut freqs = [0u64; 256];
        let (mut a, mut b) = (1u64, 1u64);
        for f in freqs.iter_mut().take(40) {
            *f = a;
            let c = a + b;
            a = b;
            b = c;
        }
        let lens = code_lengths(&freqs);
        assert!(lens.iter().all(|&l| l as u32 <= MAX_BITS));
        // Kraft inequality: the lengths must form a valid prefix code.
        let kraft: f64 = lens
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 2f64.powi(-(l as i32)))
            .sum();
        assert!(kraft <= 1.0 + 1e-9, "kraft {kraft}");
    }

    #[test]
    fn corrupt_blocks_rejected() {
        let data = b"hello hello hello".to_vec();
        let packed = encode(&data);
        assert!(decode(&packed[..10]).is_err());
        // A block claiming data but with an all-zero code table.
        let mut bogus = Vec::new();
        put_varint(&mut bogus, 5);
        bogus.extend_from_slice(&[0u8; 128]);
        assert!(decode(&bogus).is_err());
    }

    proptest! {
        #[test]
        fn round_trip_any(data in prop::collection::vec(any::<u8>(), 0..4096)) {
            let packed = encode(&data);
            prop_assert_eq!(decode(&packed).unwrap(), data);
        }

        #[test]
        fn round_trip_skewed(data in prop::collection::vec(0u8..5, 0..4096)) {
            let packed = encode(&data);
            prop_assert_eq!(decode(&packed).unwrap(), data);
        }

        #[test]
        fn lengths_always_form_prefix_code(
            counts in prop::collection::vec(0u64..100_000, 256)
        ) {
            let mut freqs = [0u64; 256];
            freqs.copy_from_slice(&counts);
            let lens = code_lengths(&freqs);
            let kraft: f64 =
                lens.iter().filter(|&&l| l > 0).map(|&l| 2f64.powi(-(l as i32))).sum();
            prop_assert!(kraft <= 1.0 + 1e-9);
            // Every used symbol gets a code; unused symbols get none
            // (except the degenerate single-symbol case).
            let used = counts.iter().filter(|&&c| c > 0).count();
            if used >= 2 {
                for s in 0..256 {
                    prop_assert_eq!(lens[s] > 0, counts[s] > 0);
                }
            }
        }
    }
}
