//! Lossless compressors standing in for the nvCOMP baselines of §3.2.
//!
//! The paper compares its de-duplication method against "several lossless
//! compression algorithms included with the open-source nvCOMP library":
//! LZ4, Snappy, Cascaded, Bitcomp, Deflate and Zstd. nvCOMP is a
//! closed-source CUDA library, so this crate implements from-scratch members
//! of the same algorithmic families:
//!
//! | nvCOMP codec | This crate | Family |
//! |---|---|---|
//! | LZ4 | [`Lz4Like`] | byte-aligned LZ77, 64 KiB window, token format |
//! | Snappy | [`SnappyLike`] | fast greedy LZ77, no chains, tag bytes |
//! | Cascaded | [`Cascaded`] | delta + run-length + bit-packing on `u32` lanes |
//! | Bitcomp | [`Bitcomp`] | frame-based bit-packing of `u32` lanes |
//! | Deflate | [`DeflateLike`] | LZSS + canonical Huffman entropy stage |
//! | Zstd | [`ZstdLike`] | large-window LZ77 + canonical Huffman |
//! | (RLE) | [`Rle`] | PackBits-style run-length coding |
//!
//! What matters for reproducing Figure 5 is the *family behaviour*: these
//! codecs exploit only redundancy **within** one checkpoint, so their ratio
//! is flat in the checkpoint count, while de-duplication exploits the whole
//! record and improves with frequency. The implementations favour clarity
//! and correct round-trips over ratio tuning; their relative ordering
//! (Zstd-like ≥ Deflate-like ≥ LZ4-like ≥ Snappy-like on most data) matches
//! the originals'.
//!
//! ```
//! use ckpt_compress::{Codec, ZstdLike};
//! let codec = ZstdLike::default();
//! let data = b"abcabcabcabcabcabc".repeat(10);
//! let packed = codec.compress(&data);
//! assert!(packed.len() < data.len());
//! assert_eq!(codec.decompress(&packed).unwrap(), data);
//! ```

pub mod bitio;
pub mod bitpack;
pub mod blocks;
pub mod cascaded;
pub mod huffman;
pub mod lz;
pub mod lz4like;
pub mod rle;
pub mod snappylike;
pub mod zlike;

pub use bitpack::Bitcomp;
pub use cascaded::Cascaded;
pub use lz4like::Lz4Like;
pub use rle::Rle;
pub use snappylike::SnappyLike;
pub use zlike::{DeflateLike, ZstdLike};

/// Decompression failure: the input is not a valid stream for the codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorruptStream(pub &'static str);

impl std::fmt::Display for CorruptStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "corrupt compressed stream: {}", self.0)
    }
}

impl std::error::Error for CorruptStream {}

/// A lossless block codec.
pub trait Codec: Send + Sync {
    /// Short identifier used in benchmark tables ("lz4", "zstd", …).
    fn name(&self) -> &'static str;

    /// Compress `data` into a self-contained block.
    fn compress(&self, data: &[u8]) -> Vec<u8>;

    /// Invert [`compress`](Self::compress).
    fn decompress(&self, data: &[u8]) -> Result<Vec<u8>, CorruptStream>;

    /// Approximate compression cost in ALU-op-equivalents per input byte,
    /// used by the benchmark harness to model GPU compression throughput.
    /// Calibrated loosely to nvCOMP's published throughput ordering.
    fn flops_per_byte(&self) -> f64 {
        8.0
    }
}

/// All codecs, in the order the paper's Figure 5 legend lists them.
pub fn all_codecs() -> Vec<Box<dyn Codec>> {
    vec![
        Box::new(Lz4Like::default()),
        Box::new(SnappyLike::default()),
        Box::new(Cascaded),
        Box::new(Bitcomp),
        Box::new(DeflateLike::default()),
        Box::new(ZstdLike::default()),
        Box::new(Rle),
    ]
}

/// Stable wire-format identifiers for each codec (used by checkpoint diffs
/// whose payload is compressed — the paper's §5 dedup+compression hybrid).
/// `0` is reserved for "no compression".
pub fn codec_id(name: &str) -> Option<u8> {
    match name {
        "lz4" => Some(1),
        "snappy" => Some(2),
        "cascaded" => Some(3),
        "bitcomp" => Some(4),
        "deflate" => Some(5),
        "zstd" => Some(6),
        "rle" => Some(7),
        _ => None,
    }
}

/// Instantiate a codec from its wire identifier.
pub fn codec_by_id(id: u8) -> Option<Box<dyn Codec>> {
    match id {
        1 => Some(Box::new(Lz4Like::default())),
        2 => Some(Box::new(SnappyLike::default())),
        3 => Some(Box::new(Cascaded)),
        4 => Some(Box::new(Bitcomp)),
        5 => Some(Box::new(DeflateLike::default())),
        6 => Some(Box::new(ZstdLike::default())),
        7 => Some(Box::new(Rle)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_codecs_roundtrip_mixed_data() {
        let mut data = Vec::new();
        data.extend(std::iter::repeat_n(0u8, 1000)); // runs
        data.extend((0..1000u32).flat_map(|i| (i / 7).to_le_bytes())); // counters
        data.extend(b"the quick brown fox ".repeat(50)); // text
        data.extend((0..997u32).map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)); // noise

        for codec in all_codecs() {
            let packed = codec.compress(&data);
            let back = codec.decompress(&packed).unwrap_or_else(|e| {
                panic!("{} failed to decompress its own output: {e}", codec.name())
            });
            assert_eq!(back, data, "{} round trip", codec.name());
        }
    }

    #[test]
    fn all_codecs_handle_empty_input() {
        for codec in all_codecs() {
            let packed = codec.compress(&[]);
            assert_eq!(
                codec.decompress(&packed).unwrap(),
                Vec::<u8>::new(),
                "{}",
                codec.name()
            );
        }
    }

    #[test]
    fn codec_names_are_unique() {
        let names: Vec<_> = all_codecs().iter().map(|c| c.name()).collect();
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }

    #[test]
    fn codec_ids_round_trip() {
        for codec in all_codecs() {
            let id = codec_id(codec.name()).expect("registered id");
            assert_ne!(id, 0, "{}", codec.name());
            let back = codec_by_id(id).expect("instantiable");
            assert_eq!(back.name(), codec.name());
        }
        assert!(codec_id("nope").is_none());
        assert!(codec_by_id(0).is_none());
        assert!(codec_by_id(99).is_none());
    }

    #[test]
    fn compressible_data_actually_shrinks() {
        let data = vec![42u8; 100_000];
        for codec in all_codecs() {
            let packed = codec.compress(&data);
            assert!(
                packed.len() < data.len() / 10,
                "{} only reached {} bytes on constant input",
                codec.name(),
                packed.len()
            );
        }
    }
}
