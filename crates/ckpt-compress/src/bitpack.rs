//! Bitcomp-like frame-based bit packing.
//!
//! Interprets the buffer as little-endian `u32` lanes (GDV counters are
//! small non-negative integers, the sweet spot for this codec). Each frame
//! of 256 lanes stores a reference value (the frame minimum) and packs
//! `value - min` with the frame's worst-case bit width. Trailing bytes that
//! do not fill a lane are stored raw.
//!
//! Frame header: 6 bits of width + 32 bits of minimum; payload: `width`
//! bits per lane.

use crate::bitio::{BitReader, BitWriter};
use crate::{Codec, CorruptStream};

const FRAME: usize = 256;

/// Bitcomp-like integer bit-packing codec.
#[derive(Debug, Clone, Copy, Default)]
pub struct Bitcomp;

fn width_of(v: u32) -> u32 {
    32 - v.leading_zeros()
}

impl Codec for Bitcomp {
    fn name(&self) -> &'static str {
        "bitcomp"
    }

    fn compress(&self, data: &[u8]) -> Vec<u8> {
        let n_lanes = data.len() / 4;
        let tail = &data[n_lanes * 4..];

        let mut w = BitWriter::new();
        // Stream header: lane count (u32) and tail length (2 bits worth 0..3).
        w.write(n_lanes as u64, 32);
        w.write(tail.len() as u64, 2);
        for &b in tail {
            w.write(b as u64, 8);
        }

        let mut lanes = data[..n_lanes * 4]
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()));
        let mut frame = Vec::with_capacity(FRAME);
        loop {
            frame.clear();
            frame.extend(lanes.by_ref().take(FRAME));
            if frame.is_empty() {
                break;
            }
            let min = *frame.iter().min().unwrap();
            let width = frame.iter().map(|&v| width_of(v - min)).max().unwrap();
            w.write(width as u64, 6);
            w.write(min as u64, 32);
            for &v in &frame {
                w.write((v - min) as u64, width);
            }
            if frame.len() < FRAME {
                break;
            }
        }
        w.finish()
    }

    fn decompress(&self, data: &[u8]) -> Result<Vec<u8>, CorruptStream> {
        let mut r = BitReader::new(data);
        let n_lanes = r.read(32)? as usize;
        let tail_len = r.read(2)? as usize;
        let mut tail = [0u8; 3];
        for t in tail.iter_mut().take(tail_len) {
            *t = r.read(8)? as u8;
        }

        let mut out = Vec::with_capacity(n_lanes * 4 + tail_len);
        let mut remaining = n_lanes;
        while remaining > 0 {
            let width = r.read(6)? as u32;
            if width > 32 {
                return Err(CorruptStream("bitcomp width > 32"));
            }
            let min = r.read(32)? as u32;
            let in_frame = remaining.min(FRAME);
            for _ in 0..in_frame {
                let delta = r.read(width)? as u32;
                let v = min.wrapping_add(delta);
                out.extend_from_slice(&v.to_le_bytes());
            }
            remaining -= in_frame;
        }
        out.extend_from_slice(&tail[..tail_len]);
        Ok(out)
    }

    fn flops_per_byte(&self) -> f64 {
        1.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn small_counters_pack_tightly() {
        // 10k u32 counters in 0..16: ≤ 4 bits each + headers ≈ 5 KiB
        // versus 40 KiB raw.
        let data: Vec<u8> = (0..10_000u32)
            .flat_map(|i| (i % 16).to_le_bytes())
            .collect();
        let packed = Bitcomp.compress(&data);
        assert!(
            packed.len() < data.len() / 7,
            "packed {} bytes",
            packed.len()
        );
        assert_eq!(Bitcomp.decompress(&packed).unwrap(), data);
    }

    #[test]
    fn constant_lanes_take_zero_width() {
        let data: Vec<u8> = std::iter::repeat_n(123456u32.to_le_bytes(), 1024)
            .flatten()
            .collect();
        let packed = Bitcomp.compress(&data);
        // 4 frames × 38-bit headers + stream header ≈ 24 bytes.
        assert!(packed.len() < 40, "packed {} bytes", packed.len());
        assert_eq!(Bitcomp.decompress(&packed).unwrap(), data);
    }

    #[test]
    fn unaligned_tail_round_trips() {
        let mut data: Vec<u8> = (0..100u32).flat_map(|i| i.to_le_bytes()).collect();
        data.extend_from_slice(&[0xaa, 0xbb, 0xcc]);
        let packed = Bitcomp.compress(&data);
        assert_eq!(Bitcomp.decompress(&packed).unwrap(), data);
    }

    #[test]
    fn tiny_inputs() {
        for n in 0..9usize {
            let data: Vec<u8> = (0..n as u8).collect();
            let packed = Bitcomp.compress(&data);
            assert_eq!(Bitcomp.decompress(&packed).unwrap(), data, "len {n}");
        }
    }

    #[test]
    fn full_range_values() {
        let data: Vec<u8> = [0u32, u32::MAX, 1, u32::MAX - 1, 1 << 31]
            .iter()
            .flat_map(|v| v.to_le_bytes())
            .collect();
        let packed = Bitcomp.compress(&data);
        assert_eq!(Bitcomp.decompress(&packed).unwrap(), data);
    }

    #[test]
    fn truncated_stream_rejected() {
        let data: Vec<u8> = (0..100u32).flat_map(|i| i.to_le_bytes()).collect();
        let mut packed = Bitcomp.compress(&data);
        packed.truncate(packed.len() / 2);
        assert!(Bitcomp.decompress(&packed).is_err());
    }

    proptest! {
        #[test]
        fn round_trip(data in prop::collection::vec(any::<u8>(), 0..2048)) {
            let packed = Bitcomp.compress(&data);
            prop_assert_eq!(Bitcomp.decompress(&packed).unwrap(), data);
        }

        #[test]
        fn round_trip_counters(vals in prop::collection::vec(0u32..1000, 0..600)) {
            let data: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
            let packed = Bitcomp.compress(&data);
            prop_assert_eq!(Bitcomp.decompress(&packed).unwrap(), data);
        }
    }
}
