//! nvCOMP-Cascaded-like codec: delta → run-length → bit-packing on `u32`
//! lanes.
//!
//! Structured numeric data (sorted ids, slowly-growing counters) turns into
//! long runs after delta coding; the run values and run lengths are then
//! bit-packed with the [`crate::Bitcomp`] frame packer. Deltas are
//! zigzag-encoded so negative steps stay small.

use crate::bitpack::Bitcomp;
use crate::{Codec, CorruptStream};

/// Cascaded codec: delta + RLE + bit-packing.
#[derive(Debug, Clone, Copy, Default)]
pub struct Cascaded;

// Deltas are computed with wrapping 32-bit arithmetic (so any u32 pair has a
// well-defined delta) and zigzag-coded so small negative steps stay small.
#[inline]
fn zigzag(v: i32) -> u32 {
    ((v << 1) ^ (v >> 31)) as u32
}

#[inline]
fn unzigzag(v: u32) -> i32 {
    ((v >> 1) as i32) ^ -((v & 1) as i32)
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn get_u32(data: &[u8], pos: &mut usize) -> Result<u32, CorruptStream> {
    if *pos + 4 > data.len() {
        return Err(CorruptStream("cascaded header truncated"));
    }
    let v = u32::from_le_bytes(data[*pos..*pos + 4].try_into().unwrap());
    *pos += 4;
    Ok(v)
}

impl Codec for Cascaded {
    fn name(&self) -> &'static str {
        "cascaded"
    }

    fn compress(&self, data: &[u8]) -> Vec<u8> {
        let n_lanes = data.len() / 4;
        let tail = &data[n_lanes * 4..];

        // Stage 1: delta (zigzag-coded, wrapping).
        let mut prev: u32 = 0;
        let mut deltas = Vec::with_capacity(n_lanes);
        for c in data[..n_lanes * 4].chunks_exact(4) {
            let v = u32::from_le_bytes(c.try_into().unwrap());
            deltas.push(zigzag(v.wrapping_sub(prev) as i32));
            prev = v;
        }

        // Stage 2: run-length over the delta stream.
        let mut values: Vec<u8> = Vec::new();
        let mut counts: Vec<u8> = Vec::new();
        let mut n_runs: u32 = 0;
        let mut i = 0;
        while i < deltas.len() {
            let v = deltas[i];
            let mut run = 1u32;
            while i + (run as usize) < deltas.len() && deltas[i + run as usize] == v {
                run += 1;
            }
            put_u32(&mut values, v);
            put_u32(&mut counts, run);
            n_runs += 1;
            i += run as usize;
        }

        // Stage 3: bit-pack the run values and run lengths.
        let packed_values = Bitcomp.compress(&values);
        let packed_counts = Bitcomp.compress(&counts);

        let mut out = Vec::with_capacity(packed_values.len() + packed_counts.len() + 24);
        put_u32(&mut out, n_lanes as u32);
        put_u32(&mut out, n_runs);
        out.push(tail.len() as u8);
        out.extend_from_slice(tail);
        put_u32(&mut out, packed_values.len() as u32);
        out.extend_from_slice(&packed_values);
        out.extend_from_slice(&packed_counts);
        out
    }

    fn decompress(&self, data: &[u8]) -> Result<Vec<u8>, CorruptStream> {
        let mut pos = 0usize;
        let n_lanes = get_u32(data, &mut pos)? as usize;
        let n_runs = get_u32(data, &mut pos)? as usize;
        if pos >= data.len() && !(n_lanes == 0 && pos == data.len()) {
            return Err(CorruptStream("cascaded header truncated"));
        }
        let tail_len = if pos < data.len() {
            let t = data[pos] as usize;
            pos += 1;
            t
        } else {
            return Err(CorruptStream("cascaded header truncated"));
        };
        if tail_len > 3 || pos + tail_len > data.len() {
            return Err(CorruptStream("cascaded tail truncated"));
        }
        let tail = &data[pos..pos + tail_len];
        pos += tail_len;
        let pv_len = get_u32(data, &mut pos)? as usize;
        if pos + pv_len > data.len() {
            return Err(CorruptStream("cascaded values truncated"));
        }
        let values = Bitcomp.decompress(&data[pos..pos + pv_len])?;
        let counts = Bitcomp.decompress(&data[pos + pv_len..])?;
        if values.len() != n_runs * 4 || counts.len() != n_runs * 4 {
            return Err(CorruptStream("cascaded run arrays inconsistent"));
        }

        let mut out = Vec::with_capacity(n_lanes * 4 + tail_len);
        let mut prev: u32 = 0;
        let mut produced = 0usize;
        for r in 0..n_runs {
            let v = u32::from_le_bytes(values[r * 4..r * 4 + 4].try_into().unwrap());
            let count = u32::from_le_bytes(counts[r * 4..r * 4 + 4].try_into().unwrap()) as usize;
            let delta = unzigzag(v) as u32;
            for _ in 0..count {
                prev = prev.wrapping_add(delta);
                out.extend_from_slice(&prev.to_le_bytes());
            }
            produced += count;
            if produced > n_lanes {
                return Err(CorruptStream("cascaded produced too many lanes"));
            }
        }
        if produced != n_lanes {
            return Err(CorruptStream("cascaded lane count mismatch"));
        }
        out.extend_from_slice(tail);
        Ok(out)
    }

    fn flops_per_byte(&self) -> f64 {
        3.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zigzag_round_trip() {
        for v in [-5i32, -1, 0, 1, 5, i32::MAX, i32::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v, "value {v}");
        }
    }

    #[test]
    fn arithmetic_sequence_collapses() {
        // 0, 3, 6, 9 ... constant delta -> one run.
        let data: Vec<u8> = (0..10_000u32).flat_map(|i| (i * 3).to_le_bytes()).collect();
        let packed = Cascaded.compress(&data);
        assert!(packed.len() < 100, "packed {} bytes", packed.len());
        assert_eq!(Cascaded.decompress(&packed).unwrap(), data);
    }

    #[test]
    fn step_counters_compress_well() {
        // Counter array where long stretches share a value (GDV-like).
        let data: Vec<u8> = (0..10_000u32)
            .flat_map(|i| (i / 500).to_le_bytes())
            .collect();
        let packed = Cascaded.compress(&data);
        assert!(packed.len() < data.len() / 50);
        assert_eq!(Cascaded.decompress(&packed).unwrap(), data);
    }

    #[test]
    fn unaligned_tail() {
        let mut data: Vec<u8> = (0..40u32).flat_map(|i| i.to_le_bytes()).collect();
        data.extend_from_slice(&[1, 2]);
        let packed = Cascaded.compress(&data);
        assert_eq!(Cascaded.decompress(&packed).unwrap(), data);
    }

    #[test]
    fn wrapping_values_round_trip() {
        let data: Vec<u8> = [u32::MAX, 0, u32::MAX, 5]
            .iter()
            .flat_map(|v| v.to_le_bytes())
            .collect();
        let packed = Cascaded.compress(&data);
        assert_eq!(Cascaded.decompress(&packed).unwrap(), data);
    }

    #[test]
    fn truncation_rejected() {
        let data: Vec<u8> = (0..100u32).flat_map(|i| i.to_le_bytes()).collect();
        let packed = Cascaded.compress(&data);
        for cut in [0, 3, 8, packed.len() - 1] {
            assert!(Cascaded.decompress(&packed[..cut]).is_err(), "cut {cut}");
        }
    }

    proptest! {
        #[test]
        fn round_trip(data in prop::collection::vec(any::<u8>(), 0..2048)) {
            let packed = Cascaded.compress(&data);
            prop_assert_eq!(Cascaded.decompress(&packed).unwrap(), data);
        }
    }
}
