//! Shared LZ77 match-finding engine (hash chains) and LEB128 varints.
//!
//! All the LZ-family codecs ([`crate::Lz4Like`], [`crate::SnappyLike`],
//! [`crate::DeflateLike`], [`crate::ZstdLike`]) parse the input into
//! *sequences* — a run of literals followed by a back-reference — using this
//! engine with different window sizes and search depths.

/// Match-finder configuration.
#[derive(Debug, Clone, Copy)]
pub struct MatchConfig {
    /// Maximum back-reference distance.
    pub window: usize,
    /// Minimum match length worth encoding.
    pub min_match: usize,
    /// Maximum match length the target format can encode.
    pub max_match: usize,
    /// Hash-chain probes per position (1 = greedy single probe).
    pub max_chain: usize,
}

impl MatchConfig {
    /// LZ4-style: 64 KiB window, moderate search.
    pub fn lz4() -> Self {
        MatchConfig {
            window: 64 * 1024 - 1,
            min_match: 4,
            max_match: 0xFFF + 19,
            max_chain: 16,
        }
    }

    /// Snappy-style: small window, single-probe greedy (fast, weaker).
    pub fn snappy() -> Self {
        MatchConfig {
            window: 32 * 1024 - 1,
            min_match: 4,
            max_match: 64 + 3,
            max_chain: 1,
        }
    }

    /// Deflate-style: 32 KiB window, decent search.
    pub fn deflate() -> Self {
        MatchConfig {
            window: 32 * 1024 - 1,
            min_match: 3,
            max_match: 258,
            max_chain: 32,
        }
    }

    /// Zstd-style: large window, deep search (best ratio, slowest).
    pub fn zstd() -> Self {
        MatchConfig {
            window: 1 << 20,
            min_match: 3,
            max_match: 1 << 16,
            max_chain: 64,
        }
    }
}

/// One parsed sequence: `lit_len` literals starting at `lit_start`, then a
/// match of `match_len` bytes at distance `offset` (`match_len == 0` only in
/// the final sequence).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Seq {
    pub lit_start: usize,
    pub lit_len: usize,
    pub offset: usize,
    pub match_len: usize,
}

const HASH_BITS: u32 = 16;
const HASH_SIZE: usize = 1 << HASH_BITS;

#[inline]
fn hash4(data: &[u8], i: usize) -> usize {
    let v = u32::from_le_bytes(data[i..i + 4].try_into().unwrap());
    (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

/// Longest common prefix of `data[a..]` and `data[b..]`, capped at `max`.
#[inline]
fn match_len(data: &[u8], a: usize, b: usize, max: usize) -> usize {
    let mut n = 0;
    let limit = max.min(data.len() - b);
    while n < limit && data[a + n] == data[b + n] {
        n += 1;
    }
    n
}

/// Parse `data` into sequences. Concatenating, for each sequence, its
/// literals followed by `match_len` bytes copied from `offset` back,
/// reproduces `data` exactly (the round-trip property every format test
/// checks).
pub fn find_sequences(data: &[u8], cfg: &MatchConfig) -> Vec<Seq> {
    let n = data.len();
    let mut seqs = Vec::new();
    if n == 0 {
        return seqs;
    }

    let mut head = vec![-1i64; HASH_SIZE];
    let mut prev = vec![-1i64; n];
    let mut lit_start = 0usize;
    let mut i = 0usize;

    let insert = |head: &mut [i64], prev: &mut [i64], data: &[u8], pos: usize| {
        if pos + 4 <= data.len() {
            let h = hash4(data, pos);
            prev[pos] = head[h];
            head[h] = pos as i64;
        }
    };

    while i + cfg.min_match <= n && i + 4 <= n {
        // Probe the chain for the best match at i.
        let h = hash4(data, i);
        let mut cand = head[h];
        let mut best_len = 0usize;
        let mut best_off = 0usize;
        let mut probes = 0usize;
        while cand >= 0 && probes < cfg.max_chain {
            let c = cand as usize;
            if i - c > cfg.window {
                break;
            }
            let len = match_len(data, c, i, cfg.max_match);
            if len > best_len {
                best_len = len;
                best_off = i - c;
                if len >= cfg.max_match {
                    break;
                }
            }
            cand = prev[c];
            probes += 1;
        }

        if best_len >= cfg.min_match {
            seqs.push(Seq {
                lit_start,
                lit_len: i - lit_start,
                offset: best_off,
                match_len: best_len,
            });
            // Index the positions the match skips over (sparsely for long
            // matches, capped to bound worst-case cost).
            let end = i + best_len;
            let step = if best_len > 256 { 8 } else { 1 };
            let mut p = i;
            while p < end && p + 4 <= n {
                insert(&mut head, &mut prev, data, p);
                p += step;
            }
            i = end;
            lit_start = i;
        } else {
            insert(&mut head, &mut prev, data, i);
            i += 1;
        }
    }

    // Final literal-only sequence (possibly empty literals).
    seqs.push(Seq {
        lit_start,
        lit_len: n - lit_start,
        offset: 0,
        match_len: 0,
    });
    seqs
}

/// Replay sequences against `literals`-bearing `data` (the original buffer)
/// is only possible during compression; decoders use
/// decoder-side replay logic on their own streams. This helper exists
/// for the engine's tests: rebuild the input from sequences + the original
/// data's literal ranges.
pub fn rebuild(data: &[u8], seqs: &[Seq]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len());
    for s in seqs {
        out.extend_from_slice(&data[s.lit_start..s.lit_start + s.lit_len]);
        for _ in 0..s.match_len {
            let b = out[out.len() - s.offset];
            out.push(b);
        }
    }
    out
}

/// Write an LEB128 varint.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

/// Read an LEB128 varint.
pub fn get_varint(data: &[u8], pos: &mut usize) -> Result<u64, crate::CorruptStream> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        if *pos >= data.len() {
            return Err(crate::CorruptStream("varint truncated"));
        }
        let b = data[*pos];
        *pos += 1;
        if shift >= 63 && b > 1 {
            return Err(crate::CorruptStream("varint overflow"));
        }
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sequences_rebuild_repetitive_input() {
        let data = b"abcabcabcabcabcabc".repeat(20);
        for cfg in [
            MatchConfig::lz4(),
            MatchConfig::snappy(),
            MatchConfig::deflate(),
            MatchConfig::zstd(),
        ] {
            let seqs = find_sequences(&data, &cfg);
            assert_eq!(rebuild(&data, &seqs), data);
            // Repetitive input must actually produce matches.
            assert!(seqs.iter().any(|s| s.match_len > 0), "{cfg:?}");
        }
    }

    #[test]
    fn overlapping_match_is_produced_for_runs() {
        // A constant run matches at offset 1 (RLE-via-LZ).
        let data = vec![9u8; 300];
        let seqs = find_sequences(&data, &MatchConfig::lz4());
        assert_eq!(rebuild(&data, &seqs), data);
        assert!(seqs.iter().any(|s| s.offset == 1 && s.match_len > 100));
    }

    #[test]
    fn incompressible_input_is_one_literal_run() {
        let data: Vec<u8> = (0..255u8).collect();
        let seqs = find_sequences(&data, &MatchConfig::lz4());
        assert_eq!(seqs.len(), 1);
        assert_eq!(seqs[0].lit_len, data.len());
        assert_eq!(seqs[0].match_len, 0);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert!(find_sequences(&[], &MatchConfig::lz4()).is_empty());
        for n in 1..8 {
            let data = vec![1u8; n];
            let seqs = find_sequences(&data, &MatchConfig::lz4());
            assert_eq!(rebuild(&data, &seqs), data, "len {n}");
        }
    }

    #[test]
    fn max_match_is_respected() {
        let data = vec![5u8; 100_000];
        for cfg in [
            MatchConfig::lz4(),
            MatchConfig::snappy(),
            MatchConfig::deflate(),
        ] {
            let seqs = find_sequences(&data, &cfg);
            assert!(seqs.iter().all(|s| s.match_len <= cfg.max_match), "{cfg:?}");
            assert_eq!(rebuild(&data, &seqs), data);
        }
    }

    #[test]
    fn window_is_respected() {
        // Two identical blocks separated by more than the snappy window:
        // matches must not reference across the gap.
        let mut data = b"unique-block-of-text-1234567890".repeat(4);
        data.extend((0..40_000u32).map(|i| (i % 251) as u8));
        data.extend(b"unique-block-of-text-1234567890".repeat(4));
        let cfg = MatchConfig::snappy();
        let seqs = find_sequences(&data, &cfg);
        assert!(seqs.iter().all(|s| s.offset <= cfg.window));
        assert_eq!(rebuild(&data, &seqs), data);
    }

    #[test]
    fn varint_round_trip() {
        let mut out = Vec::new();
        let vals = [
            0u64,
            1,
            127,
            128,
            300,
            16383,
            16384,
            u32::MAX as u64,
            u64::MAX,
        ];
        for &v in &vals {
            put_varint(&mut out, v);
        }
        let mut pos = 0;
        for &v in &vals {
            assert_eq!(get_varint(&out, &mut pos).unwrap(), v);
        }
        assert_eq!(pos, out.len());
    }

    #[test]
    fn varint_rejects_truncation() {
        let mut out = Vec::new();
        put_varint(&mut out, u64::MAX);
        out.pop();
        let mut pos = 0;
        assert!(get_varint(&out, &mut pos).is_err());
    }

    proptest! {
        #[test]
        fn engine_round_trips_any_input(data in prop::collection::vec(any::<u8>(), 0..8192)) {
            for cfg in [MatchConfig::lz4(), MatchConfig::snappy(), MatchConfig::zstd()] {
                let seqs = find_sequences(&data, &cfg);
                prop_assert_eq!(rebuild(&data, &seqs), data.clone());
            }
        }

        #[test]
        fn engine_round_trips_low_entropy(data in prop::collection::vec(0u8..4, 0..8192)) {
            let seqs = find_sequences(&data, &MatchConfig::lz4());
            prop_assert_eq!(rebuild(&data, &seqs), data);
        }

        #[test]
        fn varint_any(v in any::<u64>()) {
            let mut out = Vec::new();
            put_varint(&mut out, v);
            let mut pos = 0;
            prop_assert_eq!(get_varint(&out, &mut pos).unwrap(), v);
        }
    }
}
