//! Round-trip matrix: every codec × every input shape that has bitten a
//! compressor somewhere — empty, single byte, all-identical runs,
//! incompressible noise, and multi-megabyte buffers — plus the store
//! fallback property of the block container (a codec that would expand a
//! payload never does so through [`ckpt_compress::blocks`]).

use ckpt_compress::blocks::{compress_blocks, container_overhead, decompress_blocks};
use ckpt_compress::{all_codecs, Codec};
use proptest::prelude::*;

fn assert_roundtrip(codec: &dyn Codec, data: &[u8], label: &str) {
    let packed = codec.compress(data);
    let back = codec
        .decompress(&packed)
        .unwrap_or_else(|e| panic!("{} failed on {label}: {e}", codec.name()));
    assert_eq!(back, data, "{} corrupted {label}", codec.name());
}

/// Deterministic pseudo-random bytes (xorshift-mixed counter): effectively
/// incompressible for every codec family in this crate.
fn noise(len: usize, seed: u32) -> Vec<u8> {
    (0..len as u32)
        .map(|i| {
            let mut x = i.wrapping_mul(2654435761).wrapping_add(seed);
            x ^= x >> 15;
            x = x.wrapping_mul(0x2c1b3c6d);
            x ^= x >> 12;
            (x >> 8) as u8
        })
        .collect()
}

#[test]
fn fixed_shape_matrix() {
    let four_mib = 4 * 1024 * 1024 + 37; // off a power of two on purpose
    let shapes: Vec<(&str, Vec<u8>)> = vec![
        ("empty", Vec::new()),
        ("single byte", vec![0xa5]),
        ("two identical", vec![7, 7]),
        ("all-identical 1 MiB", vec![42u8; 1 << 20]),
        ("incompressible 256 KiB", noise(256 * 1024, 1)),
        (
            "4 MiB+ counters",
            (0..four_mib as u32 / 4)
                .flat_map(|i| (i / 11).to_le_bytes())
                .chain([9u8; 1])
                .collect(),
        ),
        ("4 MiB+ noise", noise(four_mib, 2)),
    ];
    for codec in all_codecs() {
        for (label, data) in &shapes {
            assert_roundtrip(&*codec, data, label);
        }
    }
}

#[test]
fn store_fallback_bounds_expansion() {
    // Shapes chosen to expand under at least some codec when compressed
    // naively; through the block container the overhead is bounded by the
    // table of contents regardless of the codec's behaviour.
    let shapes: Vec<Vec<u8>> = vec![
        vec![0x5b],
        noise(100, 3),
        noise(64 * 1024 + 13, 4),
        noise(1 << 20, 5),
    ];
    let block = 16 * 1024;
    for codec in all_codecs() {
        for data in &shapes {
            let packed = compress_blocks(&*codec, data, block);
            assert!(
                packed.len() <= data.len() + container_overhead(data.len(), block),
                "{}: container {} exceeds input {} + overhead {}",
                codec.name(),
                packed.len(),
                data.len(),
                container_overhead(data.len(), block)
            );
            assert_eq!(decompress_blocks(&*codec, &packed).unwrap(), *data);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_buffers_roundtrip_every_codec(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        for codec in all_codecs() {
            assert_roundtrip(&*codec, &data, "proptest buffer");
        }
    }

    #[test]
    fn structured_buffers_roundtrip_every_codec(
        stride in 1usize..64,
        modulus in 1u32..300,
        len in 0usize..40_000,
    ) {
        let data: Vec<u8> = (0..len as u32).map(|i| ((i / stride as u32) % modulus) as u8).collect();
        for codec in all_codecs() {
            assert_roundtrip(&*codec, &data, "structured buffer");
            let packed = compress_blocks(&*codec, &data, 4096);
            prop_assert!(packed.len() <= data.len() + container_overhead(data.len(), 4096));
            prop_assert_eq!(decompress_blocks(&*codec, &packed).unwrap(), data.clone());
        }
    }
}
