//! MD5 (RFC 1321), implemented from scratch.
//!
//! The paper cites MD5 as the canonical *slow* cryptographic hash whose cost
//! would bottleneck de-duplication throughput (§2.4). It is included so the
//! hash-function ablation benchmark (A1 in `DESIGN.md`) can quantify that
//! claim. Do not use this for security purposes; MD5 is cryptographically
//! broken — here it only serves as a throughput comparison point.

use crate::{Digest128, Hasher128};
use std::sync::OnceLock;

/// RFC 1321 MD5.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Md5;

/// Per-round left-rotate amounts (RFC 1321 §3.4).
const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, // round 1
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, // round 2
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, // round 3
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, // round 4
];

/// The sine-derived constant table: `K[i] = floor(2^32 * |sin(i + 1)|)`.
///
/// Computed once at first use, exactly as RFC 1321 defines it, rather than
/// transcribing 64 magic numbers.
fn k_table() -> &'static [u32; 64] {
    static K: OnceLock<[u32; 64]> = OnceLock::new();
    K.get_or_init(|| {
        let mut k = [0u32; 64];
        for (i, slot) in k.iter_mut().enumerate() {
            *slot = (((i as f64 + 1.0).sin().abs()) * 4294967296.0) as u32;
        }
        k
    })
}

/// MD5 of `data`. The 16 output bytes are returned in digest order (the order
/// they are conventionally rendered in hex).
pub fn md5(data: &[u8]) -> Digest128 {
    let k = k_table();
    let mut a0: u32 = 0x6745_2301;
    let mut b0: u32 = 0xefcd_ab89;
    let mut c0: u32 = 0x98ba_dcfe;
    let mut d0: u32 = 0x1032_5476;

    // Message padding: 0x80, zeros, then the 64-bit little-endian bit length.
    let bit_len = (data.len() as u64).wrapping_mul(8);
    let mut padded = Vec::with_capacity(data.len() + 72);
    padded.extend_from_slice(data);
    padded.push(0x80);
    while padded.len() % 64 != 56 {
        padded.push(0);
    }
    padded.extend_from_slice(&bit_len.to_le_bytes());
    debug_assert_eq!(padded.len() % 64, 0);

    for chunk in padded.chunks_exact(64) {
        let mut m = [0u32; 16];
        for (j, w) in m.iter_mut().enumerate() {
            *w = u32::from_le_bytes(chunk[j * 4..j * 4 + 4].try_into().unwrap());
        }

        let (mut a, mut b, mut c, mut d) = (a0, b0, c0, d0);
        for i in 0..64 {
            let (f, g) = match i / 16 {
                0 => ((b & c) | (!b & d), i),
                1 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                2 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let tmp = d;
            d = c;
            c = b;
            b = b.wrapping_add(
                a.wrapping_add(f)
                    .wrapping_add(k[i])
                    .wrapping_add(m[g])
                    .rotate_left(S[i]),
            );
            a = tmp;
        }

        a0 = a0.wrapping_add(a);
        b0 = b0.wrapping_add(b);
        c0 = c0.wrapping_add(c);
        d0 = d0.wrapping_add(d);
    }

    let mut out = [0u8; 16];
    out[0..4].copy_from_slice(&a0.to_le_bytes());
    out[4..8].copy_from_slice(&b0.to_le_bytes());
    out[8..12].copy_from_slice(&c0.to_le_bytes());
    out[12..16].copy_from_slice(&d0.to_le_bytes());
    Digest128::from_bytes(&out)
}

impl Hasher128 for Md5 {
    #[inline]
    fn hash_seeded(&self, data: &[u8], seed: u32) -> Digest128 {
        // MD5 has no seed parameter; fold the seed in as a prefix so seeded
        // digests remain distinct (only used by tests and the ablation bench).
        if seed == 0 {
            md5(data)
        } else {
            let mut buf = Vec::with_capacity(data.len() + 4);
            buf.extend_from_slice(&seed.to_le_bytes());
            buf.extend_from_slice(data);
            md5(&buf)
        }
    }

    fn name(&self) -> &'static str {
        "md5"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 1321 appendix A.5 test suite.
    #[test]
    fn rfc1321_test_vectors() {
        let cases: &[(&[u8], &str)] = &[
            (b"", "d41d8cd98f00b204e9800998ecf8427e"),
            (b"a", "0cc175b9c0f1b6a831c399e269772661"),
            (b"abc", "900150983cd24fb0d6963f7d28e17f72"),
            (b"message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
            (
                b"abcdefghijklmnopqrstuvwxyz",
                "c3fcd3d76192e4007dfb496cca67e13b",
            ),
            (
                b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                "d174ab98d277d9f5a5611c2c9f419d9f",
            ),
            (
                b"12345678901234567890123456789012345678901234567890123456789012345678901234567890",
                "57edf4a22be3c955ac49da2e2107b67a",
            ),
        ];
        for (input, expected) in cases {
            assert_eq!(md5(input).to_hex(), *expected, "input {:?}", input);
        }
    }

    #[test]
    fn padding_boundary_lengths() {
        // Lengths around the 55/56/64-byte padding boundaries must all hash
        // without panicking and produce distinct digests.
        let data = [0x5au8; 130];
        let mut seen = std::collections::HashSet::new();
        for n in 50..=70 {
            assert!(seen.insert(md5(&data[..n])), "collision at len {n}");
        }
    }

    #[test]
    fn seeded_digests_differ_from_unseeded() {
        let h = Md5;
        assert_ne!(h.hash_seeded(b"data", 0), h.hash_seeded(b"data", 1));
        assert_eq!(h.hash_seeded(b"data", 0), md5(b"data"));
    }
}
