//! The 128-bit digest value type.

use std::fmt;

/// A 128-bit digest, stored as two little-endian 64-bit halves.
///
/// This is a plain-old-data type (`Copy`, no padding surprises for the two
/// `u64` fields) so it can be stored densely in flattened Merkle-tree arrays
/// and in the lock-free distinct-hash map, mirroring how the paper keeps
/// 16-byte Murmur3 digests in GPU global memory.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Digest128 {
    /// Low 64 bits.
    pub h1: u64,
    /// High 64 bits.
    pub h2: u64,
}

impl Digest128 {
    /// The all-zero digest. Murmur3 maps the empty input with seed 0 to this
    /// value; the distinct-hash map treats it as a normal key (slot emptiness
    /// is tracked by a separate state byte, see `gpu_sim::distinct_map`).
    pub const ZERO: Digest128 = Digest128 { h1: 0, h2: 0 };

    /// Construct from the two 64-bit halves.
    #[inline]
    pub const fn new(h1: u64, h2: u64) -> Self {
        Digest128 { h1, h2 }
    }

    /// Construct from 16 little-endian bytes.
    #[inline]
    pub fn from_bytes(bytes: &[u8; 16]) -> Self {
        let h1 = u64::from_le_bytes(bytes[0..8].try_into().unwrap());
        let h2 = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
        Digest128 { h1, h2 }
    }

    /// Serialize to 16 little-endian bytes.
    #[inline]
    pub fn to_bytes(self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[0..8].copy_from_slice(&self.h1.to_le_bytes());
        out[8..16].copy_from_slice(&self.h2.to_le_bytes());
        out
    }

    /// The digest as a single `u128` (`h2` in the high bits).
    #[inline]
    pub const fn as_u128(self) -> u128 {
        (self.h2 as u128) << 64 | self.h1 as u128
    }

    /// Whether this is the all-zero digest.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.h1 == 0 && self.h2 == 0
    }

    /// Lower-case hex rendering (32 chars), high byte first, matching the
    /// conventional rendering of MD5 / Murmur3 digests.
    pub fn to_hex(self) -> String {
        self.to_bytes().iter().map(|b| format!("{b:02x}")).collect()
    }
}

impl fmt::Debug for Digest128 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest128({})", self.to_hex())
    }
}

impl fmt::Display for Digest128 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl From<u128> for Digest128 {
    #[inline]
    fn from(v: u128) -> Self {
        Digest128 {
            h1: v as u64,
            h2: (v >> 64) as u64,
        }
    }
}

impl From<Digest128> for u128 {
    #[inline]
    fn from(d: Digest128) -> Self {
        d.as_u128()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_round_trip() {
        let d = Digest128::new(0x0123_4567_89ab_cdef, 0xfedc_ba98_7654_3210);
        assert_eq!(Digest128::from_bytes(&d.to_bytes()), d);
    }

    #[test]
    fn u128_round_trip() {
        let v: u128 = 0xDEAD_BEEF_CAFE_BABE_0123_4567_89AB_CDEF;
        assert_eq!(u128::from(Digest128::from(v)), v);
    }

    #[test]
    fn zero_sentinel() {
        assert!(Digest128::ZERO.is_zero());
        assert!(!Digest128::new(1, 0).is_zero());
        assert!(!Digest128::new(0, 1).is_zero());
    }

    #[test]
    fn hex_rendering() {
        let d = Digest128::from_bytes(&[
            0xd4, 0x1d, 0x8c, 0xd9, 0x8f, 0x00, 0xb2, 0x04, 0xe9, 0x80, 0x09, 0x98, 0xec, 0xf8,
            0x42, 0x7e,
        ]);
        assert_eq!(d.to_hex(), "d41d8cd98f00b204e9800998ecf8427e");
    }

    #[test]
    fn byte_order_is_little_endian_per_half() {
        let d = Digest128::new(0x01, 0x02);
        let b = d.to_bytes();
        assert_eq!(b[0], 0x01);
        assert_eq!(b[8], 0x02);
    }
}
