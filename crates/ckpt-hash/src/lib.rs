//! Hashing primitives for GPU-accelerated de-duplication.
//!
//! The de-duplication engine compares data chunks by their 128-bit digests.
//! The paper uses the non-cryptographic MurmurHash3 x64-128 function because
//! its throughput is high enough not to bottleneck de-duplication, unlike
//! cryptographic functions such as MD5 (§2.4 of the paper). Both are provided
//! here so the trade-off can be measured (ablation A1 in `DESIGN.md`):
//!
//! * [`Murmur3`] — MurmurHash3 x64-128, the production hash.
//! * [`Md5`] — RFC 1321 MD5, the slow cryptographic comparison point.
//! * [`Sha256`] — FIPS 180-4 SHA-256 (truncated to 128 bits), the
//!   conservative cryptographic option.
//!
//! All hash functions implement the [`Hasher128`] trait and produce a
//! [`Digest128`], a plain-old-data 128-bit value that can live inside lock-free
//! hash-table slots and flattened Merkle-tree arrays.

pub mod digest;
pub mod md5;
pub mod murmur3;
pub mod sha256;

pub use digest::Digest128;
pub use md5::Md5;
pub use murmur3::Murmur3;
pub use sha256::Sha256;

/// A 128-bit digest function over byte strings.
///
/// Implementations must be pure functions of `(data, seed)`: the same input
/// always produces the same digest, on every thread, so digests computed by
/// concurrent de-duplication kernels are directly comparable.
pub trait Hasher128: Send + Sync {
    /// Hash `data` with the given seed.
    fn hash_seeded(&self, data: &[u8], seed: u32) -> Digest128;

    /// Hash `data` with seed 0 (the default used for chunk digests).
    #[inline]
    fn hash(&self, data: &[u8]) -> Digest128 {
        self.hash_seeded(data, 0)
    }

    /// Combine two child digests into a parent digest (Merkle-tree inner node).
    ///
    /// The default implementation hashes the concatenation of the two raw
    /// digests, which is exactly what the paper does for inner nodes: the
    /// parent's hash is `H(left || right)`.
    #[inline]
    fn combine(&self, left: &Digest128, right: &Digest128) -> Digest128 {
        let mut buf = [0u8; 32];
        self.combine_with(left, right, &mut buf)
    }

    /// [`combine`](Self::combine) with a caller-provided concatenation
    /// buffer, producing the identical digest. Hot loops that combine many
    /// digest pairs (interior Merkle levels, salted collision probes) thread
    /// one scratch array through the whole kernel chunk instead of
    /// materializing a fresh buffer per pair.
    #[inline]
    fn combine_with(
        &self,
        left: &Digest128,
        right: &Digest128,
        scratch: &mut [u8; 32],
    ) -> Digest128 {
        scratch[..16].copy_from_slice(&left.to_bytes());
        scratch[16..].copy_from_slice(&right.to_bytes());
        self.hash(&scratch[..])
    }

    /// Human-readable name, used in benchmark reports.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combine_is_order_sensitive() {
        let h = Murmur3;
        let a = h.hash(b"left chunk");
        let b = h.hash(b"right chunk");
        assert_ne!(h.combine(&a, &b), h.combine(&b, &a));
    }

    #[test]
    fn combine_matches_manual_concatenation() {
        let h = Murmur3;
        let a = h.hash(b"aaaa");
        let b = h.hash(b"bbbb");
        let mut cat = Vec::new();
        cat.extend_from_slice(&a.to_bytes());
        cat.extend_from_slice(&b.to_bytes());
        assert_eq!(h.combine(&a, &b), h.hash(&cat));
    }

    #[test]
    fn combine_with_reused_scratch_matches_combine() {
        let h = Murmur3;
        let mut scratch = [0xAAu8; 32]; // deliberately dirty
        let digests: Vec<Digest128> = (0..16u64).map(|i| h.hash(&i.to_le_bytes())).collect();
        for pair in digests.windows(2) {
            assert_eq!(
                h.combine_with(&pair[0], &pair[1], &mut scratch),
                h.combine(&pair[0], &pair[1])
            );
        }
    }

    #[test]
    fn trait_object_dispatch() {
        let hashers: Vec<Box<dyn Hasher128>> =
            vec![Box::new(Murmur3), Box::new(Md5), Box::new(Sha256)];
        for h in &hashers {
            // Same input twice -> same digest; different input -> different digest.
            assert_eq!(h.hash(b"x"), h.hash(b"x"));
            assert_ne!(h.hash(b"x"), h.hash(b"y"));
        }
        assert_ne!(hashers[0].hash(b"x"), hashers[1].hash(b"x"));
    }
}
