//! MurmurHash3 x64-128 (Austin Appleby, public domain reference `MurmurHash3.cpp`).
//!
//! This is the hash function the paper uses for chunk digests: a fast
//! non-cryptographic 128-bit hash whose computational cost is low enough that
//! hashing is memory-bandwidth-bound rather than compute-bound on a GPU.

use crate::{Digest128, Hasher128};

const C1: u64 = 0x87c3_7b91_1142_53d5;
const C2: u64 = 0x4cf5_ad43_2745_937f;

/// MurmurHash3 x64-128.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Murmur3;

#[inline(always)]
fn fmix64(mut k: u64) -> u64 {
    k ^= k >> 33;
    k = k.wrapping_mul(0xff51_afd7_ed55_8ccd);
    k ^= k >> 33;
    k = k.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    k ^= k >> 33;
    k
}

/// Hash `data` with `seed`, returning the 128-bit digest.
///
/// Matches the reference `MurmurHash3_x64_128` byte-for-byte (verified by the
/// SMHasher verification test below).
pub fn murmur3_x64_128(data: &[u8], seed: u32) -> Digest128 {
    let len = data.len();
    let n_blocks = len / 16;

    let mut h1 = seed as u64;
    let mut h2 = seed as u64;

    // Body: 16-byte blocks.
    for block in data.chunks_exact(16) {
        let mut k1 = u64::from_le_bytes(block[0..8].try_into().unwrap());
        let mut k2 = u64::from_le_bytes(block[8..16].try_into().unwrap());

        k1 = k1.wrapping_mul(C1);
        k1 = k1.rotate_left(31);
        k1 = k1.wrapping_mul(C2);
        h1 ^= k1;

        h1 = h1.rotate_left(27);
        h1 = h1.wrapping_add(h2);
        h1 = h1.wrapping_mul(5).wrapping_add(0x52dc_e729);

        k2 = k2.wrapping_mul(C2);
        k2 = k2.rotate_left(33);
        k2 = k2.wrapping_mul(C1);
        h2 ^= k2;

        h2 = h2.rotate_left(31);
        h2 = h2.wrapping_add(h1);
        h2 = h2.wrapping_mul(5).wrapping_add(0x3849_5ab5);
    }

    // Tail: up to 15 remaining bytes.
    let tail = &data[n_blocks * 16..];
    let mut k1: u64 = 0;
    let mut k2: u64 = 0;
    // Fall-through switch from the reference implementation, expressed as
    // explicit byte accumulation.
    for (i, &b) in tail.iter().enumerate().rev() {
        if i >= 8 {
            k2 |= (b as u64) << ((i - 8) * 8);
        } else {
            k1 |= (b as u64) << (i * 8);
        }
    }
    if tail.len() > 8 {
        k2 = k2.wrapping_mul(C2);
        k2 = k2.rotate_left(33);
        k2 = k2.wrapping_mul(C1);
        h2 ^= k2;
    }
    if !tail.is_empty() {
        k1 = k1.wrapping_mul(C1);
        k1 = k1.rotate_left(31);
        k1 = k1.wrapping_mul(C2);
        h1 ^= k1;
    }

    // Finalization.
    h1 ^= len as u64;
    h2 ^= len as u64;
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);
    h1 = fmix64(h1);
    h2 = fmix64(h2);
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);

    Digest128 { h1, h2 }
}

impl Hasher128 for Murmur3 {
    #[inline]
    fn hash_seeded(&self, data: &[u8], seed: u32) -> Digest128 {
        murmur3_x64_128(data, seed)
    }

    fn name(&self) -> &'static str {
        "murmur3-x64-128"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_seed_zero_is_zero() {
        // Well-known property of the reference implementation.
        assert_eq!(murmur3_x64_128(b"", 0), Digest128::ZERO);
    }

    #[test]
    fn empty_input_nonzero_seed_is_not_zero() {
        assert_ne!(murmur3_x64_128(b"", 1), Digest128::ZERO);
    }

    /// The SMHasher verification test: hash keys {[0], [0,1], ... [0..254]}
    /// with seeds 256-len, concatenate the digests, hash the concatenation
    /// with seed 0, and compare the first 4 LE bytes against the published
    /// verification constant for MurmurHash3_x64_128.
    #[test]
    fn smhasher_verification_constant() {
        const EXPECTED: u32 = 0x6384_BA69;
        let mut key = [0u8; 256];
        let mut hashes = Vec::with_capacity(255 * 16);
        for i in 0..256 {
            key[i] = i as u8;
            let d = murmur3_x64_128(&key[..i], (256 - i) as u32);
            hashes.extend_from_slice(&d.to_bytes());
        }
        let fin = murmur3_x64_128(&hashes, 0);
        let verification = u32::from_le_bytes(fin.to_bytes()[..4].try_into().unwrap());
        assert_eq!(
            verification, EXPECTED,
            "got {verification:#010x}, expected {EXPECTED:#010x}"
        );
    }

    #[test]
    fn all_tail_lengths_are_distinct() {
        // Exercise every tail-length code path (0..=15 residual bytes).
        let data = [0xabu8; 64];
        let mut seen = std::collections::HashSet::new();
        for n in 0..=48 {
            assert!(
                seen.insert(murmur3_x64_128(&data[..n], 7)),
                "collision at len {n}"
            );
        }
    }

    #[test]
    fn seed_changes_digest() {
        let d0 = murmur3_x64_128(b"some chunk of checkpoint data", 0);
        let d1 = murmur3_x64_128(b"some chunk of checkpoint data", 1);
        assert_ne!(d0, d1);
    }

    #[test]
    fn deterministic_across_calls() {
        let data: Vec<u8> = (0..1024u32)
            .map(|i| i.wrapping_mul(2654435761) as u8)
            .collect();
        assert_eq!(murmur3_x64_128(&data, 42), murmur3_x64_128(&data, 42));
    }

    #[test]
    fn single_bit_flip_changes_digest() {
        let mut data = vec![0u8; 128];
        let base = murmur3_x64_128(&data, 0);
        for byte in 0..data.len() {
            data[byte] ^= 1;
            assert_ne!(
                murmur3_x64_128(&data, 0),
                base,
                "flip at byte {byte} undetected"
            );
            data[byte] ^= 1;
        }
    }
}
