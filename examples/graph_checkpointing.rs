//! The paper's headline workload, end to end: ORANGES graphlet counting
//! over a road-network graph, checkpointed at high frequency with every
//! method, sizes compared.
//!
//! ```sh
//! cargo run --release --example graph_checkpointing [n_vertices]
//! ```

use gpu_dedup_ckpt::dedup::prelude::*;
use gpu_dedup_ckpt::gpu_sim::Device;
use gpu_dedup_ckpt::graph::{gorder, GraphStats, PaperGraph};
use gpu_dedup_ckpt::oranges::OrangesRun;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(10_000);

    // 1. Input graph, pre-processed with Gorder (§3.2).
    let graph = PaperGraph::AsiaOsm.generate(n, 42);
    let graph = gorder::reorder(&graph);
    println!(
        "input: {} — {}",
        PaperGraph::AsiaOsm.name(),
        GraphStats::compute(&graph)
    );

    // 2. Run ORANGES, capturing 10 evenly spaced GDV checkpoints.
    let mut snapshots = Vec::new();
    let mut run = OrangesRun::new(&graph);
    run.run_with_checkpoints(10, |bytes, done| {
        snapshots.push(bytes.to_vec());
        eprintln!("  checkpoint at {done}/{} roots", graph.n_vertices());
    });
    println!(
        "ORANGES done: {} graphlet instances, GDV array {} bytes\n",
        run.subgraphs_seen(),
        snapshots[0].len()
    );

    // 3. Checkpoint the same record with all four methods.
    let chunk = 128;
    let methods: Vec<(&str, Box<dyn Checkpointer>)> = vec![
        (
            "Full",
            Box::new(FullCheckpointer::new(Device::a100(), chunk)),
        ),
        (
            "Basic",
            Box::new(BasicCheckpointer::new(Device::a100(), chunk)),
        ),
        (
            "List",
            Box::new(ListCheckpointer::new(
                Device::a100(),
                TreeConfig::new(chunk),
            )),
        ),
        (
            "Tree",
            Box::new(TreeCheckpointer::new(
                Device::a100(),
                TreeConfig::new(chunk),
            )),
        ),
    ];
    println!(
        "{:<8} {:>14} {:>10} {:>14} {:>14}",
        "method", "record bytes", "ratio", "metadata", "modeled tp"
    );
    for (name, mut method) in methods {
        let rec = run_record(&mut *method, snapshots.iter().map(|s| s.as_slice()));
        let inc = rec.stats.excluding_first();
        println!(
            "{:<8} {:>14} {:>9.1}x {:>14} {:>11.2} GB/s",
            name,
            rec.stats.total_stored(),
            inc.ratio(),
            rec.stats.total_metadata(),
            inc.modeled_throughput() / 1e9,
        );
        // Every method's record must reproduce the exact GDV history.
        let versions = restore_record(&rec.diffs).expect("restore");
        assert_eq!(versions.last().unwrap(), snapshots.last().unwrap());
    }
    println!("\nall records restored bit-exactly ✓");
}
