//! Adjoint-style high-frequency checkpointing (one of the paper's
//! motivating non-resilience scenarios, §1).
//!
//! A forward 2D heat-diffusion sweep checkpoints its field every few steps
//! into a de-duplicated lineage; the backward (adjoint) pass then walks the
//! record in reverse, restoring every intermediate state it needs. With
//! checkpoint intervals this short, full checkpoints would store the field
//! dozens of times over — the Tree method stores a fraction of one copy.
//!
//! ```sh
//! cargo run --release --example adjoint_timestepping
//! ```

use gpu_dedup_ckpt::dedup::prelude::*;
use gpu_dedup_ckpt::gpu_sim::Device;

const N: usize = 256; // grid side
const STEPS: usize = 60;
const CKPT_EVERY: usize = 2;

/// Fixed-point heat field, one u16 per cell (stable under byte comparison).
struct Field(Vec<u16>);

impl Field {
    fn new() -> Field {
        // A hot square in a cold domain.
        let mut f = vec![0u16; N * N];
        for y in N / 4..N / 2 {
            for x in N / 4..N / 2 {
                f[y * N + x] = 40_000;
            }
        }
        Field(f)
    }

    /// One explicit diffusion step (integer arithmetic, shrinking support —
    /// most of the domain stays exactly zero between checkpoints, the sparse
    /// update pattern adjoint workloads exhibit).
    fn step(&mut self) {
        let src = self.0.clone();
        for y in 1..N - 1 {
            for x in 1..N - 1 {
                let c = src[y * N + x] as u32;
                let sum = src[(y - 1) * N + x] as u32
                    + src[(y + 1) * N + x] as u32
                    + src[y * N + x - 1] as u32
                    + src[y * N + x + 1] as u32;
                self.0[y * N + x] = ((c * 4 + sum) / 8) as u16;
            }
        }
    }

    fn as_bytes(&self) -> &[u8] {
        // SAFETY: u16 is plain old data; the slice covers the Vec exactly.
        unsafe { std::slice::from_raw_parts(self.0.as_ptr() as *const u8, self.0.len() * 2) }
    }

    fn energy(bytes: &[u8]) -> u64 {
        bytes
            .chunks_exact(2)
            .map(|c| u16::from_le_bytes([c[0], c[1]]) as u64)
            .sum()
    }
}

fn main() {
    let device = Device::a100();
    let mut ckpt = TreeCheckpointer::new(device, TreeConfig::new(64));
    let mut field = Field::new();

    // Forward pass: checkpoint every CKPT_EVERY steps.
    let mut diffs = Vec::new();
    let mut full_bytes = 0u64;
    for step in 0..STEPS {
        if step % CKPT_EVERY == 0 {
            let out = ckpt.checkpoint(field.as_bytes());
            full_bytes += out.stats.uncompressed_bytes;
            diffs.push(out.diff);
        }
        field.step();
    }
    let stored: u64 = diffs.iter().map(|d| d.stored_bytes() as u64).sum();
    println!(
        "forward pass: {} checkpoints of {} KiB each",
        diffs.len(),
        N * N * 2 / 1024
    );
    println!(
        "record: {} KiB stored vs {} KiB full — {:.1}x smaller",
        stored / 1024,
        full_bytes / 1024,
        full_bytes as f64 / stored as f64
    );

    // Backward (adjoint) pass: revisit the stored states newest-first.
    let versions = restore_record(&diffs).expect("lineage restores");
    println!("\nbackward pass over {} stored states:", versions.len());
    for (k, v) in versions.iter().enumerate().rev().take(5) {
        println!("  state {k}: total energy {}", Field::energy(v));
    }
    // Diffusion conserves total energy in the interior; check first vs last.
    let e0 = Field::energy(&versions[0]);
    let e_last = Field::energy(versions.last().unwrap());
    let drift = (e0 as f64 - e_last as f64).abs() / (e0 as f64);
    assert!(drift < 0.05, "energy drifted by {drift}");
    println!("\nenergy conserved across the record ✓ (first {e0}, last {e_last})");
}
