//! Quickstart: de-duplicated incremental checkpointing in a dozen lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gpu_dedup_ckpt::dedup::prelude::*;
use gpu_dedup_ckpt::gpu_sim::Device;

fn main() {
    // A simulated A100 and the paper's Tree method at 128-byte chunks.
    let device = Device::a100();
    let mut ckpt = TreeCheckpointer::new(device.clone(), TreeConfig::new(128));

    // Some application state: 1 MiB of structured data.
    let mut state: Vec<u8> = (0..1 << 20).map(|i| (i / 64 % 251) as u8).collect();

    // Initial checkpoint: everything is a first occurrence.
    let mut diffs = Vec::new();
    let out = ckpt.checkpoint(&state);
    println!(
        "checkpoint 0: {} bytes stored for {} bytes of state (ratio {:.1}x)",
        out.diff.stored_bytes(),
        state.len(),
        out.stats.ratio()
    );
    diffs.push(out.diff);

    // The application keeps running: sparse updates between checkpoints.
    for step in 1..=5 {
        for k in 0..32 {
            let at = (step * 10_007 + k * 977) % state.len();
            state[at] = state[at].wrapping_add(1);
        }
        // Also move a chunk-aligned block around — a shifted duplicate the
        // historical record recognizes without storing the data again.
        let window = 4096;
        let align = |v: usize| v / 128 * 128;
        let src = align((step * 131_071) % (state.len() - window));
        let dst = align((step * 262_147) % (state.len() - window));
        let block = state[src..src + window].to_vec();
        state[dst..dst + window].copy_from_slice(&block);

        let out = ckpt.checkpoint(&state);
        println!(
            "checkpoint {step}: {:>8} bytes stored | ratio {:>8.1}x | {} first-occurrence, \
             {} shifted, {} unchanged chunks",
            out.diff.stored_bytes(),
            out.stats.ratio(),
            out.stats.n_first,
            out.stats.n_shift,
            out.stats.n_fixed_chunks,
        );
        diffs.push(out.diff);
    }

    // Any version can be reconstructed from the record.
    let versions = restore_record(&diffs).expect("record is well-formed");
    assert_eq!(versions.last().unwrap(), &state);
    println!(
        "\nrestored all {} versions; latest matches live state ✓",
        versions.len()
    );
    println!(
        "modeled device time: {:.3} ms total on {}",
        device.metrics().modeled_sec() * 1e3,
        device.perf().config().name
    );
}
