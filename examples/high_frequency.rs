//! High-frequency checkpointing under storage backpressure (§1).
//!
//! The paper's motivating limitation: "there is only a limited amount of
//! spare space available on the fastest memory tiers to cache checkpoints,
//! so the HPC workflow may be delayed if it produces new checkpoints faster
//! than they can be flushed to slower memory tiers." This example emits a
//! rapid burst of checkpoints through the async runtime with a small host
//! staging area and a realistically slow (time-dilated) SSD: with Full
//! checkpoints the application stalls; with Tree diffs it never blocks.
//!
//! ```sh
//! cargo run --release --example high_frequency
//! ```

use gpu_dedup_ckpt::dedup::prelude::*;
use gpu_dedup_ckpt::gpu_sim::Device;
use gpu_dedup_ckpt::runtime::tier::TierConfig;
use gpu_dedup_ckpt::runtime::{AsyncRuntime, TierChain};

const CKPTS: usize = 20;
const STATE_BYTES: usize = 2 << 20;

fn snapshots() -> Vec<Vec<u8>> {
    // 2 MiB of state, ~0.2% updated between checkpoints.
    let mut data: Vec<u8> = (0..STATE_BYTES).map(|i| (i / 64 % 251) as u8).collect();
    let mut out = vec![data.clone()];
    for k in 1..CKPTS {
        for j in 0..(STATE_BYTES / 512 / 128) {
            let at = (k * 100_003 + j * 131) % STATE_BYTES;
            data[at] = data[at].wrapping_add(1);
        }
        out.push(data.clone());
    }
    out
}

fn drive(name: &str, mut method: Box<dyn Checkpointer>, snaps: &[Vec<u8>]) {
    let tiers = TierChain::with_configs(
        // Host staging: room for three full checkpoints only.
        TierConfig {
            name: "host",
            bandwidth_bps: 25.0e9,
            capacity: (STATE_BYTES * 3) as u64,
        },
        TierConfig::ssd(),
        TierConfig::pfs(),
    );
    // Time dilation: 1 modeled second = 25 real seconds, so one full
    // checkpoint takes ~25 ms to drain through the 2 GB/s SSD.
    let rt = AsyncRuntime::with_tiers_throttled(tiers, 25.0);

    let t0 = std::time::Instant::now();
    let mut stall = std::time::Duration::ZERO;
    let mut stored = 0u64;
    for (k, snap) in snaps.iter().enumerate() {
        let diff = method.checkpoint(snap).diff;
        stored += diff.stored_bytes() as u64;
        stall += rt
            .submit_blocking(0, k as u32, diff.encode())
            .expect("runtime alive");
    }
    println!(
        "{name:<5} emitted {CKPTS} checkpoints in {:>6.0} ms — stalled {:>6.0} ms, \
         record {:>7} KiB",
        t0.elapsed().as_secs_f64() * 1e3,
        stall.as_secs_f64() * 1e3,
        stored / 1024,
    );
    rt.shutdown();
}

fn main() {
    let snaps = snapshots();
    println!(
        "burst of {CKPTS} checkpoints of {} MiB through a host tier that holds 3:\n",
        STATE_BYTES >> 20
    );
    drive(
        "Full",
        Box::new(FullCheckpointer::new(Device::a100(), 128)),
        &snaps,
    );
    drive(
        "Tree",
        Box::new(TreeCheckpointer::new(Device::a100(), TreeConfig::new(128))),
        &snaps,
    );
    println!("\nde-duplicated diffs drain faster than the application produces them ✓");
}
