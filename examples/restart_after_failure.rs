//! Failure and restart through the asynchronous multi-level runtime.
//!
//! A rank runs ORANGES, checkpointing its GDV array through the async
//! flusher (host → SSD → PFS). Mid-run the node "crashes": the flusher dies
//! and everything volatile is lost. Recovery finds the durable prefix of the
//! record on the PFS, restores the newest usable GDV state, and the
//! application resumes from the matching vertex — finishing with exactly the
//! result an uninterrupted run produces.
//!
//! ```sh
//! cargo run --release --example restart_after_failure
//! ```

use gpu_dedup_ckpt::dedup::prelude::*;
use gpu_dedup_ckpt::gpu_sim::Device;
use gpu_dedup_ckpt::graph::PaperGraph;
use gpu_dedup_ckpt::oranges::OrangesRun;
use gpu_dedup_ckpt::runtime::{restore_rank_latest, AsyncRuntime};

const RANK: u32 = 0;
const N_CHECKPOINTS: usize = 8;

fn main() {
    let graph = PaperGraph::UnstructuredMesh.generate(4_000, 7);

    // Ground truth: what an uninterrupted run computes.
    let mut reference = OrangesRun::new(&graph);
    reference.run_to_completion();

    // ---- First life -----------------------------------------------------
    let runtime = AsyncRuntime::new();
    let mut ckpt = TreeCheckpointer::new(Device::a100(), TreeConfig::new(128));
    let mut run = OrangesRun::new(&graph);
    let mut progress_of = Vec::new(); // ckpt id -> completed roots

    let crash_after = 5; // checkpoints that become durable before the crash
    let mut taken = 0usize;
    run.run_with_checkpoints(N_CHECKPOINTS, |gdv_bytes, done_roots| {
        if taken >= crash_after {
            return; // the process died; later checkpoints never happen
        }
        let out = ckpt.checkpoint(gdv_bytes);
        runtime
            .submit(RANK, out.diff.ckpt_id, out.diff.encode())
            .expect("host staging");
        progress_of.push(done_roots);
        taken += 1;
    });
    let ids: Vec<_> = (0..crash_after as u32).map(|k| (RANK, k)).collect();
    runtime.wait_durable(&ids);
    println!(
        "first life: {taken} checkpoints durable, then the node crashes \
         at {:.0}% progress",
        100.0 * *progress_of.last().unwrap() as f64 / graph.n_vertices() as f64
    );
    runtime.kill();

    // ---- Recovery -------------------------------------------------------
    let recovered = runtime.recover();
    let usable = recovered.get(&RANK).map_or(0, |r| r.len());
    println!("recovery: {usable} durable checkpoints on the PFS");
    assert_eq!(usable, crash_after);

    let (last_id, gdv_bytes) = restore_rank_latest(runtime.tiers(), RANK).expect("restore");
    let resume_root = progress_of[last_id as usize];
    println!(
        "restored checkpoint {last_id} ({} bytes); resuming at root {resume_root}",
        gdv_bytes.len()
    );

    // ---- Second life ----------------------------------------------------
    let mut resumed =
        OrangesRun::resume(&graph, &gdv_bytes, resume_root).expect("GDV matches graph");
    resumed.run_to_completion();

    assert_eq!(resumed.gdv(), reference.gdv());
    println!(
        "resumed run matches the uninterrupted reference exactly ✓ \
         ({} counters checked)",
        graph.n_vertices() * 73
    );
}
