//! Concurrency stress: many ranks submitting while the flusher races a
//! randomly-timed crash; recovery must always yield a clean durable prefix
//! per rank that restores bit-exactly.

use gpu_dedup_ckpt::dedup::prelude::*;
use gpu_dedup_ckpt::gpu_sim::Device;
use gpu_dedup_ckpt::runtime::{restore_rank, AsyncRuntime, ObjectStatus, TierChain, TierConfig};

fn rank_snapshots(rank: u32, n: usize) -> Vec<Vec<u8>> {
    let len = 16 * 1024;
    let mut data: Vec<u8> = (0..len)
        .map(|i| ((i as u64 * 31 + rank as u64 * 1009) % 251) as u8)
        .collect();
    let mut out = vec![data.clone()];
    for k in 1..n {
        for j in 0..24 {
            let at = (k * 769 + j * 331 + rank as usize * 7) % len;
            data[at] = data[at].wrapping_add(1);
        }
        out.push(data.clone());
    }
    out
}

#[test]
fn concurrent_ranks_with_racing_crash_recover_cleanly() {
    for round in 0..6u64 {
        let rt = AsyncRuntime::new();
        let n_ranks = 6u32;
        let n_ckpts = 8usize;

        // Producers run concurrently; the main thread kills the runtime at a
        // pseudo-random moment.
        std::thread::scope(|s| {
            for rank in 0..n_ranks {
                let rt = &rt;
                s.spawn(move || {
                    let mut m = TreeCheckpointer::new(Device::a100(), TreeConfig::new(64));
                    for (k, snap) in rank_snapshots(rank, n_ckpts).iter().enumerate() {
                        let diff = m.checkpoint(snap).diff;
                        // After a crash, staging may be full/dead — both are
                        // legitimate outcomes for a dying node.
                        let _ = rt.submit(rank, k as u32, diff.encode());
                        std::thread::yield_now();
                    }
                });
            }
            // Crash at a round-dependent point part-way through.
            std::thread::sleep(std::time::Duration::from_micros(200 * round + 50));
            rt.kill();
        });

        let recovered = rt.recover();
        let mut total_durable = 0usize;
        for (rank, prefix) in &recovered {
            total_durable += prefix.len();
            // Every recovered prefix must decode and restore exactly to the
            // rank's original snapshots.
            if prefix.is_empty() {
                continue;
            }
            let (base, versions) = restore_rank(rt.tiers(), *rank)
                .unwrap_or_else(|e| panic!("round {round} rank {rank}: {e}"));
            assert_eq!(base, 0, "round {round} rank {rank}");
            let originals = rank_snapshots(*rank, n_ckpts);
            for (k, v) in versions.iter().enumerate() {
                assert_eq!(v, &originals[k], "round {round} rank {rank} version {k}");
            }
        }
        // Sanity: the crash landed somewhere meaningful at least sometimes.
        eprintln!("round {round}: {total_durable} durable checkpoints across ranks");
    }
}

/// Kill the runtime while a throttled flusher is mid-drain, at two
/// `time_scale` settings, and reconcile the recovery report's per-status
/// totals against the telemetry counters: every submitted object is
/// accounted for exactly once, and (fault-free) the verified count equals
/// the durable counter while everything else is lost-volatile.
#[test]
fn kill_during_drain_reconciles_report_with_telemetry() {
    for &time_scale in &[0.5f64, 2.0] {
        // A slow SSD hop (~3.2 ms modeled per 16 KB object, scaled) so the
        // crash reliably lands while objects are still staged in flight.
        let tiers = TierChain::with_configs(
            TierConfig::host(),
            TierConfig {
                name: "ssd",
                bandwidth_bps: 5e6,
                capacity: u64::MAX,
            },
            TierConfig::pfs(),
        );
        let rt = AsyncRuntime::with_tiers_throttled(tiers, time_scale);
        let n_ranks = 4u32;
        let n_ckpts = 6usize;
        std::thread::scope(|s| {
            for rank in 0..n_ranks {
                let rt = &rt;
                s.spawn(move || {
                    let mut m = TreeCheckpointer::new(Device::a100(), TreeConfig::new(64));
                    for (k, snap) in rank_snapshots(rank, n_ckpts).iter().enumerate() {
                        let _ = rt.submit(rank, k as u32, m.checkpoint(snap).diff.encode());
                    }
                });
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
            rt.kill();
        });

        let report = rt.recover_report();
        let reg = rt.telemetry();
        let submitted = reg.counter("runtime/submitted").get();
        let durable = reg.counter("runtime/durable").get();

        // Every accepted submission is classified exactly once.
        assert_eq!(report.total_objects() as u64, submitted);
        assert_eq!(
            report.total_verified() + report.total_repaired() + report.total_lost(),
            report.total_objects()
        );
        // Fault-free: nothing corrupt, nothing repaired; the durable copies
        // all verify, and the remainder died in volatile tiers.
        assert_eq!(
            report.total(ObjectStatus::LostCorrupt),
            0,
            "scale {time_scale}"
        );
        assert_eq!(report.total_repaired(), 0, "scale {time_scale}");
        assert_eq!(
            report.total_verified() as u64,
            durable,
            "scale {time_scale}"
        );
        assert_eq!(
            report.total(ObjectStatus::LostVolatile) as u64,
            submitted - durable,
            "scale {time_scale}"
        );
        assert!(report.total_durable_prefix() <= report.total_verified());
        // Integrity counters saw at least one verification per durable
        // object during recovery.
        assert!(reg.counter("integrity/frames_verified").get() >= durable);
        assert_eq!(reg.counter("integrity/frames_corrupt").get(), 0);

        // And the durable prefixes themselves restore bit-exactly.
        for rr in &report.ranks {
            if rr.prefix_len == 0 {
                continue;
            }
            let (base, versions) = restore_rank(rt.tiers(), rr.rank).unwrap();
            assert_eq!(base, 0, "scale {time_scale} rank {}", rr.rank);
            let originals = rank_snapshots(rr.rank, n_ckpts);
            for (k, v) in versions.iter().enumerate().take(rr.prefix_len) {
                assert_eq!(v, &originals[k], "scale {time_scale} rank {} v{k}", rr.rank);
            }
        }
        eprintln!(
            "scale {time_scale}: {submitted} submitted, {durable} durable, {} lost",
            report.total_lost()
        );
    }
}

#[test]
fn graceful_shutdown_drains_everything() {
    let rt = AsyncRuntime::new();
    let n_ranks = 8u32;
    let n_ckpts = 6usize;
    std::thread::scope(|s| {
        for rank in 0..n_ranks {
            let rt = &rt;
            s.spawn(move || {
                let mut m = TreeCheckpointer::new(Device::a100(), TreeConfig::new(64));
                for (k, snap) in rank_snapshots(rank, n_ckpts).iter().enumerate() {
                    rt.submit(rank, k as u32, m.checkpoint(snap).diff.encode())
                        .unwrap();
                }
            });
        }
    });
    let ids: Vec<_> = (0..n_ranks)
        .flat_map(|r| (0..n_ckpts as u32).map(move |k| (r, k)))
        .collect();
    rt.wait_durable(&ids);
    for rank in 0..n_ranks {
        let (base, versions) = restore_rank(rt.tiers(), rank).unwrap();
        assert_eq!(base, 0);
        assert_eq!(versions.len(), n_ckpts);
        assert_eq!(versions, rank_snapshots(rank, n_ckpts));
    }
    rt.shutdown();
}
