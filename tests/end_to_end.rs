//! Cross-crate integration: the full pipeline of the paper, through the
//! public API of the umbrella crate.
//!
//! graph generation → Gorder → ORANGES → GPU-sim de-duplication →
//! asynchronous multi-level runtime → failure → recovery → restart.

use gpu_dedup_ckpt::dedup::prelude::*;
use gpu_dedup_ckpt::gpu_sim::Device;
use gpu_dedup_ckpt::graph::{gorder, PaperGraph};
use gpu_dedup_ckpt::oranges::OrangesRun;
use gpu_dedup_ckpt::runtime::{restore_rank, restore_rank_latest, AsyncRuntime};

/// GDV snapshots of a small ORANGES run (shared fixture).
fn snapshots(graph: PaperGraph, n: usize, ckpts: usize, seed: u64) -> Vec<Vec<u8>> {
    let g = gorder::reorder(&graph.generate(n, seed));
    let mut out = Vec::new();
    let mut run = OrangesRun::new(&g);
    run.run_with_checkpoints(ckpts, |bytes, _| out.push(bytes.to_vec()));
    out
}

#[test]
fn oranges_to_dedup_to_runtime_round_trip() {
    let snaps = snapshots(PaperGraph::MessageRace, 3_000, 6, 1);
    let runtime = AsyncRuntime::new();
    let mut ckpt = TreeCheckpointer::new(Device::a100(), TreeConfig::new(64));
    let mut ids = Vec::new();
    for (k, snap) in snaps.iter().enumerate() {
        let out = ckpt.checkpoint(snap);
        runtime.submit(0, k as u32, out.diff.encode()).unwrap();
        ids.push((0u32, k as u32));
    }
    runtime.wait_durable(&ids);

    let (base, versions) = restore_rank(runtime.tiers(), 0).unwrap();
    assert_eq!(base, 0);
    assert_eq!(versions, snaps);
}

#[test]
fn crash_recovery_resumes_to_identical_result() {
    let g = gorder::reorder(&PaperGraph::Hugebubbles.generate(2_500, 3));
    let mut reference = OrangesRun::new(&g);
    reference.run_to_completion();

    // First life: checkpoint through the runtime, crash after 3 durable.
    let runtime = AsyncRuntime::new();
    let mut ckpt = TreeCheckpointer::new(Device::a100(), TreeConfig::new(128));
    let mut run = OrangesRun::new(&g);
    let mut progress = Vec::new();
    let mut taken = 0;
    run.run_with_checkpoints(6, |bytes, done| {
        if taken >= 3 {
            return;
        }
        let out = ckpt.checkpoint(bytes);
        runtime
            .submit(7, out.diff.ckpt_id, out.diff.encode())
            .unwrap();
        progress.push(done);
        taken += 1;
    });
    runtime.wait_durable(&[(7, 0), (7, 1), (7, 2)]);
    runtime.kill();

    // Recovery: restore the durable prefix and resume.
    let (last, gdv) = restore_rank_latest(runtime.tiers(), 7).unwrap();
    assert_eq!(last, 2);
    let mut resumed = OrangesRun::resume(&g, &gdv, progress[last as usize]).unwrap();
    resumed.run_to_completion();
    assert_eq!(resumed.gdv(), reference.gdv());
}

#[test]
fn all_methods_agree_on_restored_content() {
    let snaps = snapshots(PaperGraph::UnstructuredMesh, 2_000, 5, 9);
    let methods: Vec<Box<dyn Checkpointer>> = vec![
        Box::new(FullCheckpointer::new(Device::a100(), 64)),
        Box::new(BasicCheckpointer::new(Device::a100(), 64)),
        Box::new(ListCheckpointer::new(Device::a100(), TreeConfig::new(64))),
        Box::new(TreeCheckpointer::new(Device::a100(), TreeConfig::new(64))),
        Box::new(NaiveTreeCheckpointer::new(
            Device::a100(),
            TreeConfig::new(64),
        )),
        Box::new(SerialTreeCheckpointer::new(64)),
    ];
    for mut m in methods {
        let rec = run_record(&mut *m, snaps.iter().map(|s| s.as_slice()));
        let versions = restore_record(&rec.diffs).unwrap_or_else(|e| panic!("{}: {e}", m.name()));
        assert_eq!(versions, snaps, "{}", m.name());
    }
}

#[test]
fn dedup_ratio_ordering_holds_on_gdv_workloads() {
    // The qualitative Figure 4 claim at fine chunks on an event graph.
    let snaps = snapshots(PaperGraph::MessageRace, 3_000, 8, 5);
    let ratio = |mut m: Box<dyn Checkpointer>| {
        let rec = run_record(&mut *m, snaps.iter().map(|s| s.as_slice()));
        rec.stats.excluding_first().ratio()
    };
    let full = ratio(Box::new(FullCheckpointer::new(Device::a100(), 32)));
    let basic = ratio(Box::new(BasicCheckpointer::new(Device::a100(), 32)));
    let list = ratio(Box::new(ListCheckpointer::new(
        Device::a100(),
        TreeConfig::new(32),
    )));
    let tree = ratio(Box::new(TreeCheckpointer::new(
        Device::a100(),
        TreeConfig::new(32),
    )));

    assert!((full - 1.0).abs() < 0.01, "full {full}");
    assert!(basic > 2.0 * full, "basic {basic}");
    assert!(list > basic, "list {list} vs basic {basic}");
    assert!(tree >= list, "tree {tree} vs list {list}");
}

#[test]
fn compression_vs_dedup_crossover_with_frequency() {
    // Figure 5's core finding: at high checkpoint frequency, temporal
    // de-duplication beats single-checkpoint compression.
    use gpu_dedup_ckpt::compress::{Codec, ZstdLike};

    let snaps = snapshots(PaperGraph::MessageRace, 3_000, 20, 2);
    let zstd = ZstdLike::default();
    let (mut comp_in, mut comp_out) = (0u64, 0u64);
    for s in snaps.iter().skip(1) {
        comp_in += s.len() as u64;
        comp_out += zstd.compress(s).len() as u64;
    }
    let zstd_ratio = comp_in as f64 / comp_out as f64;

    let mut tree = TreeCheckpointer::new(Device::a100(), TreeConfig::new(128));
    let rec = run_record(&mut tree, snaps.iter().map(|s| s.as_slice()));
    let tree_ratio = rec.stats.excluding_first().ratio();

    assert!(
        tree_ratio > zstd_ratio,
        "at N=20, tree ({tree_ratio:.1}x) must beat zstd ({zstd_ratio:.1}x)"
    );
}

#[test]
fn device_state_stays_bounded_across_record() {
    // The per-process GPU-resident record must not grow with the number of
    // checkpoints beyond its sized capacity (§2.1's space argument).
    let snaps = snapshots(PaperGraph::AsiaOsm, 2_000, 10, 4);
    let mut m = TreeCheckpointer::new(Device::a100(), TreeConfig::new(128));
    let mut sizes = Vec::new();
    for s in &snaps {
        m.checkpoint(s);
        sizes.push(m.device_state_bytes());
    }
    // State is allocated once; repeated checkpoints reuse it.
    assert!(
        sizes.windows(2).all(|w| w[0] == w[1]),
        "state grew: {sizes:?}"
    );
    // Unique-hash record grows sub-linearly in checkpoints.
    assert!(m.record_len() > 0);
}
