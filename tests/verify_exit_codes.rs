//! Exit-code matrix and report-schema stability of `ckpt verify`.
//!
//! The contract, per object: `verified` — exit 0; damage the redundancy
//! group can rebuild — exit 3; anything with no path to a correct payload
//! (including a dangling cross-rank dedup reference) — exit 4; bad usage
//! — exit 2. The machine-readable report (`--json`) keeps one stable
//! schema across redundancy policies and rank-dedup on/off.

use std::path::{Path, PathBuf};
use std::process::Command;

fn ckpt() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ckpt"))
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!("ckpt-exit-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Snapshots whose content repeats with the chunk period, so the per-rank
/// sequences dedup heavily across ranks and versions (the claim winner's
/// record is referenced from everywhere — exactly what dangling-reference
/// typing must survive). Eight files → 4 ranks x 2 versions.
fn write_snapshots(dir: &Path, count: usize) -> Vec<PathBuf> {
    let mut data: Vec<u8> = (0..32 * 1024u32).map(|i| (i % 64) as u8).collect();
    let mut paths = Vec::new();
    for k in 0..count {
        if k > 0 {
            for j in 0..16 {
                let at = (k * 977 + j * 419) % data.len();
                data[at] = data[at].wrapping_add(1);
            }
        }
        let p = dir.join(format!("snap{k}.bin"));
        std::fs::write(&p, &data).unwrap();
        paths.push(p);
    }
    paths
}

fn create_cluster(record: &Path, snaps: &[PathBuf], policy: &str) {
    let out = ckpt()
        .args([
            "create",
            "--out",
            record.to_str().unwrap(),
            "--chunk",
            "64",
            "--ranks",
            "4",
            "--redundancy",
            policy,
            "--rank-dedup",
        ])
        .args(snaps.iter().map(|p| p.to_str().unwrap()))
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "create --redundancy {policy} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

fn verify_json(record: &Path) -> (i32, String) {
    let out = ckpt()
        .args(["verify", record.to_str().unwrap(), "--json"])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    let json = stdout
        .lines()
        .find(|l| l.starts_with('{'))
        .unwrap_or_default()
        .to_string();
    (out.status.code().unwrap(), json)
}

/// The full matrix, per redundancy policy: clean record → 0, group-
/// repairable damage → 3, unrepairable damage (including dangling
/// cross-rank references) → 4. The clean-record JSON report is
/// byte-identical across policies — one schema, not three.
#[test]
fn verify_exit_code_matrix_across_policies() {
    let mut clean_jsons = Vec::new();
    for policy in ["off", "partner", "xor:2"] {
        let tmp = TempDir::new(&format!("matrix-{}", policy.replace(':', "-")));
        let snaps = write_snapshots(tmp.path(), 8);
        let record = tmp.path().join("record");
        create_cluster(&record, &snaps, policy);

        // Clean: exit 0, clean:true, stable schema.
        let (code, json) = verify_json(&record);
        assert_eq!(code, 0, "{policy}: clean record must verify");
        assert!(
            json.starts_with(r#"{"command":"verify","mode":"cluster","clean":true,"verified":8,"#),
            "{policy}: unexpected report head: {json}"
        );
        assert!(
            json.contains(r#""repairable":0,"lost":0,"ranks":["#),
            "{json}"
        );
        clean_jsons.push(json);

        // One flipped payload byte in rank 1's middle checkpoint: with a
        // group it is repairable (exit 3); without, lost (exit 4).
        let victim = record.join("rank0001").join("0001.ckpt");
        let mut bytes = std::fs::read(&victim).unwrap();
        let at = bytes.len() / 2;
        bytes[at] ^= 0x40;
        std::fs::write(&victim, &bytes).unwrap();
        let (code, json) = verify_json(&record);
        if policy == "off" {
            assert_eq!(code, 4, "{policy}: corrupt object with no group is lost");
            assert!(json.contains(r#""status":"lost""#), "{json}");
        } else {
            assert_eq!(
                code, 3,
                "{policy}: group must classify the damage repairable"
            );
            assert!(json.contains(r#""status":"repairable""#), "{json}");
            assert!(!json.contains(r#""status":"lost""#), "{json}");
        }
        bytes[at] ^= 0x40;
        std::fs::write(&victim, &bytes).unwrap();

        // Wipe the claim winner's first checkpoint *and* the group store:
        // no reconstruction path remains, and every record referencing it
        // cross-rank must be typed lost — never handed back wrong.
        std::fs::remove_file(record.join("rank0000").join("0000.ckpt")).unwrap();
        let group = record.join("group");
        if group.is_dir() {
            for entry in std::fs::read_dir(&group).unwrap() {
                let p = entry.unwrap().path();
                if p.extension().is_some_and(|e| e == "grp") {
                    std::fs::remove_file(&p).unwrap();
                }
            }
        }
        let (code, json) = verify_json(&record);
        assert_eq!(code, 4, "{policy}: dangling references must exit 4");
        assert!(json.contains(r#""clean":false"#), "{json}");
        assert!(json.contains(r#""status":"lost""#), "{json}");
        // The wiped object itself and at least one *other* rank's
        // now-dangling record are both typed.
        let rank1 = json.split(r#""rank":1"#).nth(1).unwrap_or_default();
        assert!(
            rank1.contains(r#""status":"lost""#),
            "{policy}: a referencing rank must be typed lost: {json}"
        );
    }
    assert_eq!(
        clean_jsons[0], clean_jsons[1],
        "report schema must not depend on the policy"
    );
    assert_eq!(clean_jsons[1], clean_jsons[2]);
}

/// Flat (single-rank) records speak the same JSON schema with
/// `"mode":"flat"`, and damage beyond repair exits 4 there too.
#[test]
fn flat_verify_json_shares_the_schema() {
    let tmp = TempDir::new("flat-json");
    let snaps = write_snapshots(tmp.path(), 3);
    let record = tmp.path().join("record");
    let out = ckpt()
        .args(["create", "--out", record.to_str().unwrap(), "--chunk", "64"])
        .args(snaps.iter().map(|p| p.to_str().unwrap()))
        .output()
        .unwrap();
    assert!(out.status.success());

    let (code, json) = verify_json(&record);
    assert_eq!(code, 0);
    assert!(
        json.starts_with(r#"{"command":"verify","mode":"flat","clean":true,"#),
        "{json}"
    );

    let victim = record.join("0002.ckpt");
    let mut bytes = std::fs::read(&victim).unwrap();
    let at = bytes.len() / 2;
    bytes[at] ^= 0x10;
    std::fs::write(&victim, &bytes).unwrap();
    let (code, json) = verify_json(&record);
    assert_eq!(code, 4, "corrupt flat object has no repair path");
    assert!(json.contains(r#""status":"lost""#), "{json}");
}

/// Usage errors are exit 2 — distinct from verification outcomes.
#[test]
fn usage_errors_exit_2() {
    for args in [&[][..], &["frobnicate"][..], &["verify"][..]] {
        let out = ckpt().args(args).output().unwrap();
        assert_eq!(
            out.status.code(),
            Some(2),
            "args {args:?} must be a usage error"
        );
    }
}
