//! Large-scale smoke tests (run explicitly: `cargo test --release -- --ignored`).
//!
//! The paper operates on 3–5 GB GDV arrays; the regular test suite stays in
//! the MB range for speed. These tests push the engine to the hundreds-of-MB
//! regime — millions of chunks, multi-million-entry hash record — to verify
//! that nothing about the implementation is small-input-only: memory stays
//! bounded by the sized structures, ratios hold, and restoration is exact.

use gpu_dedup_ckpt::dedup::prelude::*;
use gpu_dedup_ckpt::gpu_sim::Device;
use gpu_dedup_ckpt::runtime::{
    restore_rank_latest_parallel, AsyncRuntime, CompressionPolicy, RedundancyPolicy, TierChain,
};
use gpu_dedup_ckpt::telemetry::Registry;
use std::sync::Arc;

/// 128 MiB, 1 M chunks at 128 B: sparse updates must keep diffs tiny and
/// restore exactly.
#[test]
#[ignore = "large: ~1 GiB RSS, tens of seconds; run with --ignored"]
fn tree_at_128_mib() {
    let len = 128 << 20;
    // High bits of a Weyl sequence: effectively unique, incompressible bytes.
    let mut data: Vec<u8> = (0..len)
        .map(|i| ((i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 32) as u8)
        .collect();

    let device = Device::a100();
    let mut ckpt = TreeCheckpointer::new(device.clone(), TreeConfig::new(128));
    let t0 = std::time::Instant::now();
    let d0 = ckpt.checkpoint(&data);
    eprintln!(
        "ckpt0: {} -> {} bytes in {:.2}s (modeled {:.1} ms)",
        len,
        d0.diff.stored_bytes(),
        t0.elapsed().as_secs_f64(),
        d0.stats.modeled_sec * 1e3
    );

    // Sparse updates: 0.1% of chunks.
    let mut diffs = vec![d0.diff];
    for k in 1..3u64 {
        for j in 0..1000u64 {
            let at = ((k * 1_000_003 + j * 131_071) % len as u64) as usize;
            data[at] = data[at].wrapping_add(1);
        }
        let t = std::time::Instant::now();
        let out = ckpt.checkpoint(&data);
        eprintln!(
            "ckpt{k}: stored {} bytes, ratio {:.0}x, in {:.2}s",
            out.diff.stored_bytes(),
            out.stats.ratio(),
            t.elapsed().as_secs_f64()
        );
        assert!(
            out.stats.ratio() > 100.0,
            "sparse update ratio {:.1}",
            out.stats.ratio()
        );
        diffs.push(out.diff);
    }

    // Random-access restoration of scattered ranges (full materialization of
    // three 128 MiB versions would triple peak memory; the reader is the
    // point of the large-scale path).
    let reader = RecordReader::build(&diffs).unwrap();
    for k in 0..3u64 {
        for j in 0..1000u64 {
            let at = ((k * 1_000_003 + j * 131_071) % len as u64) as usize;
            let mut byte = [0u8; 1];
            reader.read_at(2, at, &mut byte).unwrap();
            assert_eq!(byte[0], data[at], "offset {at}");
        }
    }
    let mut tail = vec![0u8; 1 << 20];
    reader.read_at(2, len - tail.len(), &mut tail).unwrap();
    assert_eq!(&tail[..], &data[len - tail.len()..]);
}

/// Multi-rank interleaved submission at the tens-of-MB scale with a kill
/// landing mid-drain: eight ranks push 4 MiB records through one
/// redundancy-enabled runtime checkpoint-major (the cluster schedule), the
/// flusher is killed while the tail of the record is still draining, and
/// afterwards every durable prefix must replay bit-exact — including a
/// fully-lost rank rebuilt from its XOR group.
#[test]
#[ignore = "large: hundreds of MB staged, seconds of drain; run with --ignored"]
fn multi_rank_interleaved_submit_survives_a_mid_drain_kill() {
    const RANKS: u32 = 8;
    const CKPTS: u32 = 4;
    let len = 4 << 20;

    // Per-rank Weyl-sequence bases with sparse per-version mutations.
    let mut snapshots: Vec<Vec<Vec<u8>>> = Vec::new();
    let mut diffs: Vec<Vec<Vec<u8>>> = Vec::new();
    for r in 0..RANKS {
        let mut data: Vec<u8> = (0..len)
            .map(|i| ((i as u64 ^ (r as u64) << 40).wrapping_mul(0x9E3779B97F4A7C15) >> 32) as u8)
            .collect();
        let mut ckpt = TreeCheckpointer::new(Device::a100(), TreeConfig::new(128));
        let mut snaps = Vec::new();
        let mut encs = Vec::new();
        for k in 0..CKPTS as u64 {
            if k > 0 {
                for j in 0..2000u64 {
                    let at = ((k * 1_000_003 + j * 131_071 + r as u64) % len as u64) as usize;
                    data[at] = data[at].wrapping_add(1);
                }
            }
            snaps.push(data.clone());
            encs.push(ckpt.checkpoint(&data).diff.encode());
        }
        snapshots.push(snaps);
        diffs.push(encs);
    }

    let rt = AsyncRuntime::with_redundancy(
        TierChain::new(),
        0.0,
        Arc::new(Registry::new()),
        CompressionPolicy::Adaptive,
        RedundancyPolicy::Xor { group_size: 4 },
    );
    // Checkpoint-major interleave; kill while the last wave is draining
    // (no durability barrier first — the drain is genuinely in flight).
    let mut ids = Vec::new();
    for k in 0..CKPTS {
        for r in 0..RANKS {
            rt.submit(r, k, diffs[r as usize][k as usize].clone())
                .unwrap();
            ids.push((r, k));
        }
        if k + 2 == CKPTS {
            // Everything up to the penultimate wave must settle; the final
            // wave races the kill below.
            rt.wait_durable(&ids);
        }
    }
    rt.kill();

    let report = rt.recover_report();
    let mut durable_total = 0usize;
    for rr in &report.ranks {
        let r = rr.rank as usize;
        // At least the waves we barriered on must be durable.
        assert!(
            rr.prefix_len >= (CKPTS - 1) as usize,
            "rank {r}: drained prefix lost, got {}",
            rr.prefix_len
        );
        durable_total += rr.prefix_len;
        let decoded: Vec<gpu_dedup_ckpt::dedup::Diff> = rr
            .payloads
            .iter()
            .map(|b| gpu_dedup_ckpt::dedup::Diff::decode(b).expect("payload decodes"))
            .collect();
        let versions = restore_record(&decoded).expect("durable prefix replays");
        for (kk, v) in versions.iter().enumerate() {
            assert_eq!(v, &snapshots[r][kk], "rank {r} version {kk} not bit-exact");
        }
    }
    eprintln!(
        "mid-drain kill: {durable_total}/{} objects durable across {RANKS} ranks",
        RANKS * CKPTS
    );

    // A full node loss on rank 5 after the crash: host, SSD and PFS gone;
    // the latest durable checkpoint must come back from the XOR group.
    let lost = 5u32;
    let lost_prefix = report
        .ranks
        .iter()
        .find(|rr| rr.rank == lost)
        .map(|rr| rr.prefix_len)
        .unwrap();
    rt.wait_redundancy_durable(&ids[..(RANKS * (CKPTS - 1)) as usize]);
    rt.tiers().host.wipe_rank(lost);
    rt.tiers().ssd.wipe_rank(lost);
    rt.tiers().pfs.wipe_rank(lost);
    let device = Device::a100();
    let out = restore_rank_latest_parallel(rt.tiers(), &device, lost, None)
        .expect("lost rank restores from its group");
    assert!(out.version as usize >= lost_prefix.saturating_sub(1));
    assert_eq!(
        &out.data, &snapshots[lost as usize][out.version as usize],
        "rank {lost}: group rebuild not bit-identical at v{}",
        out.version
    );
}
