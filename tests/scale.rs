//! Large-scale smoke tests (run explicitly: `cargo test --release -- --ignored`).
//!
//! The paper operates on 3–5 GB GDV arrays; the regular test suite stays in
//! the MB range for speed. These tests push the engine to the hundreds-of-MB
//! regime — millions of chunks, multi-million-entry hash record — to verify
//! that nothing about the implementation is small-input-only: memory stays
//! bounded by the sized structures, ratios hold, and restoration is exact.

use gpu_dedup_ckpt::dedup::prelude::*;
use gpu_dedup_ckpt::gpu_sim::Device;

/// 128 MiB, 1 M chunks at 128 B: sparse updates must keep diffs tiny and
/// restore exactly.
#[test]
#[ignore = "large: ~1 GiB RSS, tens of seconds; run with --ignored"]
fn tree_at_128_mib() {
    let len = 128 << 20;
    // High bits of a Weyl sequence: effectively unique, incompressible bytes.
    let mut data: Vec<u8> = (0..len)
        .map(|i| ((i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 32) as u8)
        .collect();

    let device = Device::a100();
    let mut ckpt = TreeCheckpointer::new(device.clone(), TreeConfig::new(128));
    let t0 = std::time::Instant::now();
    let d0 = ckpt.checkpoint(&data);
    eprintln!(
        "ckpt0: {} -> {} bytes in {:.2}s (modeled {:.1} ms)",
        len,
        d0.diff.stored_bytes(),
        t0.elapsed().as_secs_f64(),
        d0.stats.modeled_sec * 1e3
    );

    // Sparse updates: 0.1% of chunks.
    let mut diffs = vec![d0.diff];
    for k in 1..3u64 {
        for j in 0..1000u64 {
            let at = ((k * 1_000_003 + j * 131_071) % len as u64) as usize;
            data[at] = data[at].wrapping_add(1);
        }
        let t = std::time::Instant::now();
        let out = ckpt.checkpoint(&data);
        eprintln!(
            "ckpt{k}: stored {} bytes, ratio {:.0}x, in {:.2}s",
            out.diff.stored_bytes(),
            out.stats.ratio(),
            t.elapsed().as_secs_f64()
        );
        assert!(
            out.stats.ratio() > 100.0,
            "sparse update ratio {:.1}",
            out.stats.ratio()
        );
        diffs.push(out.diff);
    }

    // Random-access restoration of scattered ranges (full materialization of
    // three 128 MiB versions would triple peak memory; the reader is the
    // point of the large-scale path).
    let reader = RecordReader::build(&diffs).unwrap();
    for k in 0..3u64 {
        for j in 0..1000u64 {
            let at = ((k * 1_000_003 + j * 131_071) % len as u64) as usize;
            let mut byte = [0u8; 1];
            reader.read_at(2, at, &mut byte).unwrap();
            assert_eq!(byte[0], data[at], "offset {at}");
        }
    }
    let mut tail = vec![0u8; 1 << 20];
    reader.read_at(2, len - tail.len(), &mut tail).unwrap();
    assert_eq!(&tail[..], &data[len - tail.len()..]);
}
