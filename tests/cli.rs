//! End-to-end tests of the `ckpt` command-line tool (create → info →
//! restore → verify) against real files in a temp directory.

use std::path::{Path, PathBuf};
use std::process::Command;

fn ckpt() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ckpt"))
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!("ckpt-cli-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Write three snapshot files with sparse mutations between them.
fn write_snapshots(dir: &Path) -> Vec<PathBuf> {
    let mut data: Vec<u8> = (0..64 * 1024u32).map(|i| (i % 251) as u8).collect();
    let mut paths = Vec::new();
    for k in 0..3 {
        if k > 0 {
            for j in 0..40 {
                let at = (k * 977 + j * 131) % data.len();
                data[at] = data[at].wrapping_add(1);
            }
        }
        let p = dir.join(format!("snap{k}.bin"));
        std::fs::write(&p, &data).unwrap();
        paths.push(p);
    }
    paths
}

#[test]
fn create_info_restore_verify_round_trip() {
    let tmp = TempDir::new("roundtrip");
    let snaps = write_snapshots(tmp.path());
    let record = tmp.path().join("record");

    // create
    let out = ckpt()
        .args(["create", "--out", record.to_str().unwrap(), "--chunk", "64"])
        .args(snaps.iter().map(|p| p.to_str().unwrap()))
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "create failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(record.join("0000.ckpt").exists());
    assert!(record.join("0002.ckpt").exists());

    // info
    let out = ckpt()
        .args(["info", record.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("3 versions"), "{text}");
    assert!(text.contains("method Tree"), "{text}");

    // restore the middle version
    let restored = tmp.path().join("restored.bin");
    let out = ckpt()
        .args([
            "restore",
            record.to_str().unwrap(),
            "--version",
            "1",
            "--out",
            restored.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        std::fs::read(&restored).unwrap(),
        std::fs::read(&snaps[1]).unwrap()
    );

    // verify against all originals
    let out = ckpt()
        .args(["verify", record.to_str().unwrap()])
        .args(snaps.iter().map(|p| p.to_str().unwrap()))
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("verified bit-exact"));
}

#[test]
fn create_with_compression_and_other_methods() {
    let tmp = TempDir::new("methods");
    let snaps = write_snapshots(tmp.path());
    for (tag, extra) in [
        ("tree-zstd", vec!["--method", "tree", "--compress", "zstd"]),
        ("list", vec!["--method", "list"]),
        ("basic", vec!["--method", "basic"]),
        ("full", vec!["--method", "full"]),
        ("tree-vc", vec!["--method", "tree", "--verify-collisions"]),
    ] {
        let record = tmp.path().join(format!("rec-{tag}"));
        let out = ckpt()
            .args(["create", "--out", record.to_str().unwrap(), "--chunk", "64"])
            .args(&extra)
            .args(snaps.iter().map(|p| p.to_str().unwrap()))
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{tag}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let out = ckpt()
            .args(["verify", record.to_str().unwrap()])
            .args(snaps.iter().map(|p| p.to_str().unwrap()))
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{tag}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

/// Extract the one-line JSON report from a command's stdout.
fn stats_json(stdout: &[u8]) -> String {
    let text = String::from_utf8_lossy(stdout);
    let line = text
        .lines()
        .find(|l| l.starts_with("stats: "))
        .unwrap_or_else(|| panic!("no stats line in output:\n{text}"));
    line.trim_start_matches("stats: ").to_string()
}

/// Golden-key (not golden-value) test of the `--stats` JSON reports: the
/// key set is the stable public schema (DESIGN.md § Observability);
/// values vary run to run and are deliberately not pinned.
#[test]
fn stats_reports_have_stable_json_keys() {
    let tmp = TempDir::new("stats");
    let snaps = write_snapshots(tmp.path());
    let record = tmp.path().join("record");

    let out = ckpt()
        .args([
            "create",
            "--stats",
            "--out",
            record.to_str().unwrap(),
            "--chunk",
            "64",
        ])
        .args(snaps.iter().map(|p| p.to_str().unwrap()))
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = stats_json(&out.stdout);
    assert!(json.contains("\"command\":\"create\""), "{json}");
    let keys = gpu_dedup_ckpt::telemetry::collect_keys(&json);
    for k in [
        // report envelope
        "command",
        "method",
        "versions",
        "input_bytes",
        "stored_bytes",
        "breakdowns",
        "metrics",
        // registry sections
        "counters",
        "gauges",
        "histograms",
        "spans",
        // per-checkpoint stage breakdowns
        "ckpt_id",
        "stages",
        "name",
        "measured_sec",
        "modeled_sec",
        "total_measured_sec",
        "total_modeled_sec",
        // CLI metrics
        "cli/versions",
        "cli/snapshot_bytes",
        "cli/encoded_bytes",
        "cli/checkpoint",
        // histogram snapshot schema
        "buckets",
        "count",
        "le",
        "sum",
        "min",
        "max",
    ] {
        assert!(
            keys.iter().any(|have| have == k),
            "create report missing key {k:?}: {json}"
        );
    }
    // One stage breakdown per version, in order.
    assert_eq!(keys.iter().filter(|k| *k == "ckpt_id").count(), snaps.len());

    let restored = tmp.path().join("restored.bin");
    let out = ckpt()
        .args([
            "restore",
            "--stats",
            record.to_str().unwrap(),
            "--version",
            "2",
            "--out",
            restored.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = stats_json(&out.stdout);
    assert!(json.contains("\"command\":\"restore\""), "{json}");
    let keys = gpu_dedup_ckpt::telemetry::collect_keys(&json);
    for k in [
        "command",
        "method",
        "versions",
        "version",
        "restored_bytes",
        "breakdowns",
        "metrics",
        "cli/restore",
        "cli/restored_bytes",
        "count",
        "measured_sec",
        "modeled_sec",
    ] {
        assert!(
            keys.iter().any(|have| have == k),
            "restore report missing key {k:?}: {json}"
        );
    }

    // The `stats` subcommand reports on an existing record.
    let out = ckpt()
        .args(["stats", record.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = stats_json(&out.stdout);
    assert!(json.contains("\"command\":\"stats\""), "{json}");
    let keys = gpu_dedup_ckpt::telemetry::collect_keys(&json);
    for k in [
        "versions",
        "data_len",
        "chunk_size",
        "stored_bytes",
        "record/stored_bytes",
        "record/payload_bytes",
        "record/metadata_bytes",
        "record/first_regions",
        "record/shift_regions",
    ] {
        assert!(
            keys.iter().any(|have| have == k),
            "stats report missing key {k:?}: {json}"
        );
    }
}

/// `ckpt verify <dir>` with no originals: integrity-only mode. Checks the
/// on-disk framing, corruption detection, and legacy (unframed) fallback.
#[test]
fn verify_integrity_mode_and_legacy_fallback() {
    let tmp = TempDir::new("integrity");
    let snaps = write_snapshots(tmp.path());
    let record = tmp.path().join("record");
    assert!(ckpt()
        .args(["create", "--out", record.to_str().unwrap(), "--chunk", "64"])
        .args(snaps.iter().map(|p| p.to_str().unwrap()))
        .status()
        .unwrap()
        .success());

    // Checkpoint files carry the integrity frame magic.
    let framed = std::fs::read(record.join("0001.ckpt")).unwrap();
    assert_eq!(&framed[..4], b"CKF1");

    // Clean record: integrity mode passes without originals.
    let out = ckpt()
        .args(["verify", record.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("record integrity ok"));

    // Flip one payload byte: integrity mode must detect and fail.
    let mut corrupt = framed.clone();
    let last = corrupt.len() - 1;
    corrupt[last] ^= 0x01;
    std::fs::write(record.join("0001.ckpt"), &corrupt).unwrap();
    let out = ckpt()
        .args(["verify", record.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stdout).contains("BAD"));
    assert!(String::from_utf8_lossy(&out.stderr).contains("failed verification"));
    // Full verification against originals must refuse the corrupt frame too.
    let out = ckpt()
        .args(["verify", record.to_str().unwrap()])
        .args(snaps.iter().map(|p| p.to_str().unwrap()))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("corrupt frame"));

    // Legacy fallback: strip the 32-byte headers in place; the record must
    // still restore, verify against originals, and pass integrity mode.
    for version in 0..3 {
        let path = record.join(format!("{version:04}.ckpt"));
        let bytes = std::fs::read(&path).unwrap();
        let payload = if version == 1 {
            // Repair the corrupted version from its pristine framed copy.
            framed[32..].to_vec()
        } else {
            bytes[32..].to_vec()
        };
        std::fs::write(&path, payload).unwrap();
    }
    let out = ckpt()
        .args(["verify", record.to_str().unwrap()])
        .args(snaps.iter().map(|p| p.to_str().unwrap()))
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = ckpt()
        .args(["verify", record.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("legacy unframed"));
}

#[test]
fn helpful_errors() {
    let tmp = TempDir::new("errors");
    // Unknown subcommand → usage, exit 2.
    let out = ckpt().arg("bogus").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    // Missing record dir.
    let out = ckpt()
        .args(["info", tmp.path().join("nope").to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("no checkpoints"));
    // Restoring a version that does not exist.
    let snaps = write_snapshots(tmp.path());
    let record = tmp.path().join("rec");
    assert!(ckpt()
        .args(["create", "--out", record.to_str().unwrap()])
        .args(snaps.iter().map(|p| p.to_str().unwrap()))
        .status()
        .unwrap()
        .success());
    let out = ckpt()
        .args([
            "restore",
            record.to_str().unwrap(),
            "--version",
            "9",
            "--out",
            tmp.path().join("x").to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("not in record"));
}

/// `ckpt restore --parallel`: the single-pass restart engine restores the
/// same bytes as the sequential reader for every version, and `--stats`
/// reports the `restore/*` counters.
#[test]
fn parallel_restore_matches_sequential_and_counts() {
    let tmp = TempDir::new("parallel");
    let snaps = write_snapshots(tmp.path());
    let record = tmp.path().join("record");
    assert!(ckpt()
        .args(["create", "--out", record.to_str().unwrap(), "--chunk", "64"])
        .args(snaps.iter().map(|p| p.to_str().unwrap()))
        .status()
        .unwrap()
        .success());

    for (version, snap) in snaps.iter().enumerate() {
        let seq = tmp.path().join(format!("seq{version}.bin"));
        let par = tmp.path().join(format!("par{version}.bin"));
        let v = version.to_string();
        for (flag, out_path) in [(None, &seq), (Some("--parallel"), &par)] {
            let mut args = vec![
                "restore",
                record.to_str().unwrap(),
                "--version",
                &v,
                "--out",
                out_path.to_str().unwrap(),
            ];
            args.extend(flag);
            let out = ckpt().args(&args).output().unwrap();
            assert!(
                out.status.success(),
                "restore v{version} ({flag:?}): {}",
                String::from_utf8_lossy(&out.stderr)
            );
        }
        assert_eq!(
            std::fs::read(&par).unwrap(),
            std::fs::read(&seq).unwrap(),
            "version {version}"
        );
        assert_eq!(
            std::fs::read(&par).unwrap(),
            std::fs::read(snap).unwrap(),
            "version {version}"
        );
    }

    // --stats on the parallel path reports the restore/* counters.
    let out = ckpt()
        .args([
            "restore",
            record.to_str().unwrap(),
            "--out",
            tmp.path().join("latest.bin").to_str().unwrap(),
            "--parallel",
            "--stats",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let json = stdout
        .lines()
        .find_map(|l| l.strip_prefix("stats: "))
        .expect("stats line");
    for key in [
        "restore/chains_restored",
        "restore/records_read",
        "restore/regions_copied",
        "restore/bytes_copied",
        "restore/zero_chunks",
    ] {
        assert!(
            json.contains(&format!("\"{key}\"")),
            "missing {key}: {json}"
        );
    }
}

/// A compacted record (GC removed the files below a self-contained head):
/// info/restore/verify all detect the non-zero base, keep absolute version
/// ids, and refuse a compacted record whose head is not self-contained.
#[test]
fn compacted_record_round_trip_and_head_check() {
    let tmp = TempDir::new("compacted");
    let snaps = write_snapshots(tmp.path());

    // Full-method records are self-contained at every version, so dropping
    // the prefix leaves a valid compacted record with base v0001.
    let record = tmp.path().join("full");
    assert!(ckpt()
        .args([
            "create",
            "--out",
            record.to_str().unwrap(),
            "--method",
            "full"
        ])
        .args(snaps.iter().map(|p| p.to_str().unwrap()))
        .status()
        .unwrap()
        .success());
    std::fs::remove_file(record.join("0000.ckpt")).unwrap();

    let out = ckpt()
        .args(["info", record.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("2 versions (compacted, base v0001)"),
        "{text}"
    );

    // --version is an absolute id: v2 still restores, v0 is gone.
    let restored = tmp.path().join("v2.bin");
    let out = ckpt()
        .args([
            "restore",
            record.to_str().unwrap(),
            "--version",
            "2",
            "--out",
            restored.to_str().unwrap(),
            "--parallel",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        std::fs::read(&restored).unwrap(),
        std::fs::read(&snaps[2]).unwrap()
    );
    let out = ckpt()
        .args([
            "restore",
            record.to_str().unwrap(),
            "--version",
            "0",
            "--out",
            tmp.path().join("v0.bin").to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("not in record (1..2)"));

    // Integrity mode replays the surviving chain from the base.
    let out = ckpt()
        .args(["verify", record.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("first surviving version is v0001"), "{text}");
    assert!(text.contains("replays cleanly from v0001"), "{text}");

    // A Tree record's incremental v0001 is NOT self-contained: deleting
    // v0000 must be rejected, not silently replayed against zeros.
    let tree = tmp.path().join("tree");
    assert!(ckpt()
        .args(["create", "--out", tree.to_str().unwrap()])
        .args(snaps.iter().map(|p| p.to_str().unwrap()))
        .status()
        .unwrap()
        .success());
    std::fs::remove_file(tree.join("0000.ckpt")).unwrap();
    let out = ckpt()
        .args(["info", tree.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("not self-contained"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}
