//! Telemetry invariants across the pipeline.
//!
//! Three properties the observability layer must uphold (DESIGN.md
//! § Observability):
//!
//! 1. Per-checkpoint stage breakdowns *tile* the method's total modeled
//!    time — named stages sum to the total within 5%.
//! 2. Producer-stall accounting is exact at the edges: an unthrottled
//!    runtime reports exactly zero stall, a throttled one under a burst
//!    reports strictly positive stall.
//! 3. `Registry::reset` returns every metric to its initial state.

use std::sync::Arc;

use gpu_dedup_ckpt::dedup::prelude::*;
use gpu_dedup_ckpt::gpu_sim::Device;
use gpu_dedup_ckpt::runtime::{AsyncRuntime, TierChain, TierConfig};
use gpu_dedup_ckpt::telemetry::Registry;

/// A short mutating snapshot series: enough churn that every stage of
/// every method does real work.
fn snapshots() -> Vec<Vec<u8>> {
    let mut data: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
    let mut out = vec![data.clone()];
    for k in 0..4 {
        let at = 1000 + 3500 * k;
        data[at..at + 900].fill(0xA0 + k as u8);
        out.push(data.clone());
    }
    out
}

fn assert_breakdown_tiles(
    method_name: &str,
    breakdown: &gpu_dedup_ckpt::telemetry::StageBreakdown,
    stats_modeled_sec: f64,
    expected_stages: &[&str],
) {
    assert!(
        !breakdown.stages.is_empty(),
        "{method_name}: breakdown has no stages"
    );
    for s in expected_stages {
        assert!(
            breakdown.stage(s).is_some(),
            "{method_name}: missing stage {s:?} in {:?}",
            breakdown.stages.iter().map(|s| &s.name).collect::<Vec<_>>()
        );
    }
    // Named stages must sum to the recorded total within 5% (absolute
    // floor guards near-zero totals on tiny inputs).
    let tol = |total: f64| (0.05 * total).max(1e-9);
    let modeled_gap = (breakdown.sum_modeled_sec() - breakdown.total_modeled_sec).abs();
    assert!(
        modeled_gap <= tol(breakdown.total_modeled_sec),
        "{method_name}: stage modeled sum {} vs total {}",
        breakdown.sum_modeled_sec(),
        breakdown.total_modeled_sec,
    );
    // ... and the breakdown total must agree with the method's own
    // CheckpointStats view of modeled time.
    let stats_gap = (breakdown.total_modeled_sec - stats_modeled_sec).abs();
    assert!(
        stats_gap <= tol(stats_modeled_sec),
        "{method_name}: breakdown total {} vs stats.modeled_sec {}",
        breakdown.total_modeled_sec,
        stats_modeled_sec,
    );
    // Wall-clock attribution is contiguous by construction; allow a
    // small absolute slack for the sub-10µs trailing sweep threshold.
    let measured_gap = (breakdown.sum_measured_sec() - breakdown.total_measured_sec).abs();
    assert!(
        measured_gap <= (0.05 * breakdown.total_measured_sec).max(1e-3),
        "{method_name}: stage measured sum {} vs total {}",
        breakdown.sum_measured_sec(),
        breakdown.total_measured_sec,
    );
}

#[test]
fn stage_breakdowns_sum_to_method_totals() {
    let series = snapshots();
    let cases: Vec<(Box<dyn Checkpointer>, &[&str])> = vec![
        (
            Box::new(TreeCheckpointer::new(Device::a100(), TreeConfig::new(128))),
            &[
                "leaf_hash",
                "first_ocur_wave",
                "shift_dupl_wave",
                "metadata_compact",
                "gather_serialize",
                "d2h",
            ][..],
        ),
        (
            Box::new(ListCheckpointer::new(Device::a100(), TreeConfig::new(128))),
            &["leaf_hash", "metadata_compact", "gather_serialize", "d2h"][..],
        ),
        (
            Box::new(BasicCheckpointer::new(Device::a100(), 128)),
            &["leaf_hash", "metadata_compact", "gather_serialize", "d2h"][..],
        ),
        (
            Box::new(FullCheckpointer::new(Device::a100(), 128)),
            &["total"][..],
        ),
    ];
    for (mut method, stages) in cases {
        let name = method.name().to_string();
        for snap in &series {
            let out = method.checkpoint(snap);
            assert_breakdown_tiles(&name, &out.breakdown, out.stats.modeled_sec, stages);
        }
    }
}

#[test]
fn producer_stall_is_zero_without_backpressure() {
    let rt = AsyncRuntime::new();
    for k in 0..4u32 {
        rt.submit_blocking(0, k, vec![k as u8; 256]).unwrap();
    }
    rt.wait_durable(&[(0, 0), (0, 1), (0, 2), (0, 3)]);
    let reg = Arc::clone(rt.telemetry());
    rt.shutdown();
    assert_eq!(reg.counter("runtime/submitted").get(), 4);
    assert_eq!(reg.counter("runtime/durable").get(), 4);
    // Exactly zero: only submissions that found the host tier full may
    // count as stalls, and the default tiers never fill here.
    assert_eq!(reg.counter("runtime/producer_stalls").get(), 0);
    assert_eq!(reg.counter("runtime/producer_stall_ns").get(), 0);
}

#[test]
fn producer_stall_is_positive_under_throttled_backpressure() {
    // Host tier holds two 100-byte objects; the SSD drains at a throttled
    // pace, so a burst of 8 must stall the producer (same scenario as
    // ckpt-runtime's backpressure test, observed through telemetry).
    let tiers = TierChain::with_configs(
        TierConfig {
            name: "host",
            bandwidth_bps: 25.0e9,
            capacity: 220,
        },
        TierConfig {
            name: "ssd",
            bandwidth_bps: 1e6,
            capacity: u64::MAX,
        },
        TierConfig::pfs(),
    );
    let rt = AsyncRuntime::with_tiers_throttled(tiers, 1.0);
    for k in 0..8u32 {
        rt.submit_blocking(0, k, vec![k as u8; 100]).unwrap();
    }
    let ids: Vec<_> = (0..8u32).map(|k| (0, k)).collect();
    rt.wait_durable(&ids);
    let reg = Arc::clone(rt.telemetry());
    rt.shutdown();
    assert_eq!(reg.counter("runtime/submitted").get(), 8);
    assert_eq!(reg.counter("runtime/durable").get(), 8);
    assert!(
        reg.counter("runtime/producer_stalls").get() > 0,
        "burst must have stalled"
    );
    assert!(
        reg.counter("runtime/producer_stall_ns").get() > 0,
        "stall time must be recorded"
    );
    // Flush latencies were observed on both downstream hops.
    assert_eq!(reg.histogram("tier/ssd/flush_ns").count(), 8);
    assert_eq!(reg.histogram("tier/pfs/flush_ns").count(), 8);
}

#[test]
fn registry_reset_restores_initial_state() {
    let rt = AsyncRuntime::new();
    for k in 0..3u32 {
        rt.submit_blocking(0, k, vec![7; 128]).unwrap();
    }
    rt.wait_durable(&[(0, 0), (0, 1), (0, 2)]);
    let reg = Arc::clone(rt.telemetry());
    rt.shutdown();
    assert!(reg.counter("runtime/submitted").get() > 0);
    assert!(reg.histogram("tier/host/object_bytes").count() > 0);

    reg.reset();
    assert_eq!(reg.counter("runtime/submitted").get(), 0);
    assert_eq!(reg.counter("runtime/durable").get(), 0);
    assert_eq!(reg.counter("runtime/producer_stall_ns").get(), 0);
    assert_eq!(reg.gauge("runtime/queue_depth").get(), 0);
    assert_eq!(reg.gauge("runtime/durable_lag").get(), 0);
    assert_eq!(reg.histogram("tier/host/object_bytes").count(), 0);
    assert_eq!(reg.histogram("tier/host/object_bytes").sum(), 0);
    assert_eq!(reg.histogram("tier/pfs/flush_ns").count(), 0);

    // A reset registry behaves like a fresh one.
    let fresh = Registry::new();
    assert_eq!(reg.snapshot_json(), {
        // Materialize the same metric set on the fresh registry so the
        // schemas line up, all at zero.
        for c in [
            "runtime/submitted",
            "runtime/durable",
            "runtime/producer_stall_ns",
        ] {
            fresh.counter(c);
        }
        fresh.counter("runtime/producer_stalls");
        fresh.counter("tier/host/evictions");
        fresh.counter("tier/ssd/evictions");
        for g in [
            "runtime/queue_depth",
            "runtime/durable_lag",
            "tier/host/used_bytes",
        ] {
            fresh.gauge(g);
        }
        for h in [
            "tier/host/object_bytes",
            "tier/ssd/object_bytes",
            "tier/pfs/object_bytes",
            "tier/ssd/flush_ns",
            "tier/pfs/flush_ns",
        ] {
            fresh.histogram(h);
        }
        fresh.snapshot_json()
    });
}
